/**
 * @file
 * Tests for the Kona runtime: transparent allocation, byte-exact data
 * under FMem pressure and eviction, the no-page-fault property, dirty
 * cache-line tracking end-to-end, replication, and shutdown writeback
 * producing an exact remote image.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/kona_runtime.h"

namespace kona {
namespace {

/** A small rack + Kona stack for tests. */
class KonaFixture : public ::testing::Test
{
  protected:
    explicit KonaFixture(std::size_t fmemSize = 1 * MiB,
                         std::size_t replication = 0)
        : controller(1 * MiB)
    {
        for (NodeId id = 10; id < 13; ++id) {
            nodes.push_back(std::make_unique<MemoryNode>(
                fabric, id, 64 * MiB));
            controller.registerNode(*nodes.back());
        }
        KonaConfig cfg;
        cfg.fpga.vfmemSize = 64 * MiB;
        cfg.fpga.fmemSize = fmemSize;
        cfg.hierarchy = HierarchyConfig::scaled();
        cfg.replicationFactor = replication;
        runtime = std::make_unique<KonaRuntime>(fabric, controller, 0,
                                                cfg);
    }

    Fabric fabric;
    Controller controller;
    std::vector<std::unique_ptr<MemoryNode>> nodes;
    std::unique_ptr<KonaRuntime> runtime;
};

TEST_F(KonaFixture, AllocateAndRoundTrip)
{
    Addr a = runtime->allocate(1000);
    std::vector<std::uint8_t> data(1000);
    Rng rng(1);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    runtime->write(a, data.data(), data.size());
    std::vector<std::uint8_t> check(1000, 0);
    runtime->read(a, check.data(), check.size());
    EXPECT_EQ(check, data);
}

TEST_F(KonaFixture, TypedLoadStore)
{
    Addr a = runtime->allocate(64);
    runtime->store<double>(a, 3.25);
    runtime->store<std::uint16_t>(a + 8, 777);
    EXPECT_DOUBLE_EQ(runtime->load<double>(a), 3.25);
    EXPECT_EQ(runtime->load<std::uint16_t>(a + 8), 777);
}

TEST_F(KonaFixture, NoPageFaultsEver)
{
    // The defining property: every VFMem page is present + writable
    // from allocation to teardown.
    Addr a = runtime->allocate(4 * MiB, pageSize);
    Rng rng(2);
    for (int i = 0; i < 2000; ++i) {
        Addr addr = a + rng.below(4 * MiB - 8);
        runtime->store<std::uint64_t>(addr, i);
    }
    RuntimeStats stats = runtime->stats();
    EXPECT_EQ(stats.majorFaults, 0u);
    EXPECT_EQ(stats.minorFaults, 0u);
    EXPECT_EQ(stats.tlbShootdowns, 0u);
    EXPECT_GT(stats.remoteFetches, 0u);

    // Spot-check the page table: mapped, present, writable.
    const PageTableEntry *pte = runtime->pageTable().entry(
        pageNumber(a));
    ASSERT_NE(pte, nullptr);
    EXPECT_TRUE(pte->present);
    EXPECT_TRUE(pte->writable);
}

TEST_F(KonaFixture, DataSurvivesFMemPressure)
{
    // Working set (8MB) is 8x FMem (1MB): heavy eviction traffic.
    std::size_t size = 8 * MiB;
    Addr a = runtime->allocate(size, pageSize);
    Rng rng(3);
    std::vector<std::uint64_t> expected(size / pageSize);
    for (std::size_t p = 0; p < expected.size(); ++p) {
        expected[p] = rng.next();
        runtime->store<std::uint64_t>(a + p * pageSize + 16,
                                      expected[p]);
    }
    for (std::size_t p = 0; p < expected.size(); ++p) {
        EXPECT_EQ(runtime->load<std::uint64_t>(a + p * pageSize + 16),
                  expected[p])
            << "page " << p;
    }
    EXPECT_GT(runtime->stats().pagesEvicted, 0u);
}

TEST_F(KonaFixture, WritebackAllProducesExactRemoteImage)
{
    Addr a = runtime->allocate(256 * KiB, pageSize);
    std::vector<std::uint8_t> data(256 * KiB);
    Rng rng(4);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    runtime->write(a, data.data(), data.size());
    runtime->writebackAll();

    // Read the image straight from the memory nodes.
    for (std::size_t off = 0; off < data.size(); off += 128) {
        RemoteLocation loc =
            runtime->fpga().translation().translate(a + off);
        std::uint8_t remoteByte = 0;
        fabric.nodeStore(loc.node).read(loc.addr, &remoteByte, 1);
        EXPECT_EQ(remoteByte, data[off]) << "offset " << off;
    }
    // Nothing remains resident.
    EXPECT_EQ(runtime->fpga().fmem().pagesResident(), 0u);
}

TEST_F(KonaFixture, DirtyLineTrackingIsFineGrained)
{
    Addr a = runtime->allocate(64 * pageSize, pageSize);
    // Dirty exactly 3 lines of one page.
    runtime->store<std::uint64_t>(a + 0 * cacheLineSize, 1);
    runtime->store<std::uint64_t>(a + 7 * cacheLineSize, 2);
    runtime->store<std::uint64_t>(a + 63 * cacheLineSize, 3);
    std::uint64_t mask = runtime->fpga().dirtyMask(pageNumber(a));
    EXPECT_EQ(mask, (1ULL << 0) | (1ULL << 7) | (1ULL << 63));
}

TEST_F(KonaFixture, EvictionShipsOnlyDirtyLines)
{
    Addr a = runtime->allocate(16 * pageSize, pageSize);
    // Touch 16 pages, dirty 2 lines each.
    for (int p = 0; p < 16; ++p) {
        runtime->store<std::uint64_t>(a + p * pageSize, p);
        runtime->store<std::uint64_t>(a + p * pageSize + 640, p);
    }
    runtime->writebackAll();
    RuntimeStats stats = runtime->stats();
    EXPECT_EQ(stats.dirtyLinesWritten, 32u);
    // Wire bytes = lines + per-run headers, far below 16 full pages.
    EXPECT_LT(stats.evictionBytesOnWire, 16 * pageSize / 10);
    EXPECT_GE(stats.evictionBytesOnWire, 32 * cacheLineSize);
}

TEST_F(KonaFixture, CleanPagesEvictSilently)
{
    Addr a = runtime->allocate(8 * pageSize, pageSize);
    std::uint64_t sink = 0;
    for (int p = 0; p < 8; ++p)
        sink += runtime->load<std::uint64_t>(a + p * pageSize);
    (void)sink;
    runtime->writebackAll();
    RuntimeStats stats = runtime->stats();
    EXPECT_EQ(stats.silentEvictions, 8u);
    EXPECT_EQ(stats.evictionBytesOnWire, 0u);
}

TEST_F(KonaFixture, ClockAdvancesMonotonically)
{
    Addr a = runtime->allocate(pageSize);
    Tick t0 = runtime->elapsed();
    runtime->store<std::uint64_t>(a, 1);
    Tick t1 = runtime->elapsed();
    EXPECT_GT(t1, t0);   // the fetch cost something
    runtime->store<std::uint64_t>(a, 2);
    EXPECT_GE(runtime->elapsed(), t1);
}

TEST_F(KonaFixture, RemoteFetchDominatesFirstTouch)
{
    Addr a = runtime->allocate(2 * pageSize, pageSize);
    Tick before = runtime->appTime();
    runtime->store<std::uint64_t>(a, 1);   // cold: remote fetch ~3us
    Tick cold = runtime->appTime() - before;
    before = runtime->appTime();
    runtime->store<std::uint64_t>(a, 2);   // hot: L1
    Tick hot = runtime->appTime() - before;
    EXPECT_GT(cold, 2500u);
    EXPECT_LT(hot, 100u);
}

TEST_F(KonaFixture, HeapGrowsAcrossSlabs)
{
    // Allocate more than one slab's worth.
    std::vector<Addr> blocks;
    for (int i = 0; i < 6; ++i)
        blocks.push_back(runtime->allocate(512 * KiB, pageSize));
    EXPECT_GT(runtime->fpga().translation().slabCount(), 1u);
    // All allocations are disjoint VFMem addresses.
    for (std::size_t i = 0; i < blocks.size(); ++i) {
        for (std::size_t j = i + 1; j < blocks.size(); ++j) {
            EXPECT_TRUE(blocks[i] + 512 * KiB <= blocks[j] ||
                        blocks[j] + 512 * KiB <= blocks[i]);
        }
    }
}

TEST_F(KonaFixture, DeallocateAllowsReuse)
{
    Addr a = runtime->allocate(1 * MiB, pageSize);
    runtime->deallocate(a);
    Addr b = runtime->allocate(1 * MiB, pageSize);
    EXPECT_EQ(a, b);   // best-fit reuses the freed block
}

/** Replication fixture: every slab gets one replica. */
class KonaReplicationFixture : public KonaFixture
{
  protected:
    KonaReplicationFixture() : KonaFixture(1 * MiB, 1) {}
};

TEST_F(KonaReplicationFixture, DataSurvivesPrimaryNodeLoss)
{
    Addr a = runtime->allocate(64 * pageSize, pageSize);
    Rng rng(6);
    std::vector<std::uint64_t> expected(64);
    for (std::size_t p = 0; p < 64; ++p) {
        expected[p] = rng.next();
        runtime->store<std::uint64_t>(a + p * pageSize, expected[p]);
    }
    runtime->writebackAll();

    // Kill the primary node of the first page's slab.
    NodeId primary = runtime->fpga().translation().translate(a).node;
    fabric.setNodeDown(primary, true);

    for (std::size_t p = 0; p < 64; ++p) {
        EXPECT_EQ(runtime->load<std::uint64_t>(a + p * pageSize),
                  expected[p])
            << "page " << p;
    }
    fabric.setNodeDown(primary, false);
}

TEST_F(KonaReplicationFixture, EvictionWritesAllReplicas)
{
    Addr a = runtime->allocate(pageSize, pageSize);
    runtime->store<std::uint64_t>(a + 128, 0xabcdef);
    runtime->writebackAll();
    auto copies = runtime->fpga().translation().translateAll(a + 128);
    ASSERT_EQ(copies.size(), 2u);
    for (const RemoteLocation &loc : copies) {
        std::uint64_t check = 0;
        fabric.nodeStore(loc.node).read(loc.addr, &check,
                                        sizeof(check));
        EXPECT_EQ(check, 0xabcdefu) << "node " << loc.node;
    }
}

/** Eviction-mode comparison: CL log vs full-page movement. */
TEST(KonaEvictionModes, ClLogMovesFarLessThanFullPage)
{
    auto runOnce = [](EvictionMode mode) {
        Fabric fabric;
        Controller controller(1 * MiB);
        MemoryNode node(fabric, 1, 64 * MiB);
        controller.registerNode(node);
        KonaConfig cfg;
        cfg.fpga.vfmemSize = 16 * MiB;
        cfg.fpga.fmemSize = 1 * MiB;
        cfg.hierarchy = HierarchyConfig::scaled();
        cfg.evict.mode = mode;
        KonaRuntime runtime(fabric, controller, 0, cfg);
        Addr a = runtime.allocate(4 * MiB, pageSize);
        // One dirty line per page (the worst case for pages).
        for (std::size_t p = 0; p < 4 * MiB / pageSize; ++p)
            runtime.store<std::uint64_t>(a + p * pageSize, p);
        runtime.writebackAll();
        return runtime.stats();
    };

    RuntimeStats cl = runOnce(EvictionMode::ClLog);
    RuntimeStats page = runOnce(EvictionMode::FullPage);
    EXPECT_EQ(cl.dirtyLinesWritten, page.dirtyLinesWritten);
    // ~4KB/page vs ~72B/page on the wire: > 40x difference.
    EXPECT_GT(page.evictionBytesOnWire,
              40 * cl.evictionBytesOnWire);
    EXPECT_GT(page.evictionAmplification(), 40.0);
    EXPECT_LT(cl.evictionAmplification(), 2.0);
}

} // namespace
} // namespace kona
