/**
 * @file
 * Unit tests for src/net: fabric registration, RDMA data integrity,
 * the batching/linking and signaled/unsignaled completion semantics,
 * the cost model's calibration, and failure injection.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "net/queue_pair.h"

namespace kona {
namespace {

class NetFixture : public ::testing::Test
{
  protected:
    NetFixture()
        : fabric(), local(1 * MiB), remote(8 * MiB),
          poller(fabric.latency())
    {
        fabric.attachNode(0, &local);
        fabric.attachNode(1, &remote);
        mr = fabric.registerRegion(1, 0, 8 * MiB);
    }

    WorkRequest
    writeWr(void *buf, Addr remoteAddr, std::size_t len)
    {
        WorkRequest wr;
        wr.wrId = nextId++;
        wr.opcode = RdmaOpcode::Write;
        wr.localBuf = buf;
        wr.remoteKey = mr.key;
        wr.remoteAddr = remoteAddr;
        wr.length = len;
        return wr;
    }

    Fabric fabric;
    BackingStore local;
    BackingStore remote;
    MemoryRegion mr;
    CompletionQueue cq;
    Poller poller;
    std::uint64_t nextId = 1;
};

TEST_F(NetFixture, WriteThenReadRoundTrip)
{
    QueuePair qp(fabric, 0, 1, cq);
    SimClock clock;

    std::vector<std::uint8_t> out(4096);
    Rng rng(5);
    for (auto &b : out)
        b = static_cast<std::uint8_t>(rng.next());

    PostResult wrote = qp.post(writeWr(out.data(), 8192, out.size()),
                               clock);
    ASSERT_EQ(wrote.status, WcStatus::Success);
    ASSERT_EQ(wrote.cqesPushed, 1u);
    poller.waitOne(cq, clock);

    std::vector<std::uint8_t> in(4096, 0);
    WorkRequest rd = writeWr(in.data(), 8192, in.size());
    rd.opcode = RdmaOpcode::Read;
    ASSERT_TRUE(qp.post(rd, clock));
    poller.waitOne(cq, clock);
    EXPECT_EQ(in, out);
}

TEST_F(NetFixture, FourKbOpCostsAboutThreeMicroseconds)
{
    QueuePair qp(fabric, 0, 1, cq);
    SimClock clock;
    std::vector<std::uint8_t> buf(4096, 7);
    qp.post(writeWr(buf.data(), 0, buf.size()), clock);
    WorkCompletion wc = poller.waitOne(cq, clock);
    EXPECT_EQ(wc.status, WcStatus::Success);
    // Calibrated: ~3us for 4KB (paper §2.1), within 30%.
    EXPECT_NEAR(static_cast<double>(clock.now()), 3000.0, 1000.0);
}

TEST_F(NetFixture, LinkedBatchCheaperThanIndividualPosts)
{
    QueuePair qp(fabric, 0, 1, cq);
    std::vector<std::uint8_t> buf(64, 1);

    std::vector<WorkRequest> wrs;
    for (int i = 0; i < 16; ++i) {
        WorkRequest wr = writeWr(buf.data(), i * 64, 64);
        wr.signaled = i == 15;   // only the tail signals
        wrs.push_back(wr);
    }
    SimClock batched;
    ASSERT_TRUE(qp.postLinked(wrs, batched));
    poller.waitOne(cq, batched);
    Tick batchedTime = batched.now();

    SimClock individual;
    for (int i = 0; i < 16; ++i) {
        WorkRequest wr = writeWr(buf.data(), i * 64, 64);
        qp.post(wr, individual);
        poller.waitOne(cq, individual);
    }
    EXPECT_LT(batchedTime, individual.now() / 2);
}

TEST_F(NetFixture, UnsignaledOpsProduceNoCqes)
{
    QueuePair qp(fabric, 0, 1, cq);
    SimClock clock;
    std::vector<std::uint8_t> buf(64, 2);
    std::vector<WorkRequest> wrs;
    for (int i = 0; i < 4; ++i) {
        WorkRequest wr = writeWr(buf.data(), i * 64, 64);
        wr.signaled = i == 3;
        wrs.push_back(wr);
    }
    PostResult posted = qp.postLinked(wrs, clock);
    EXPECT_EQ(posted.status, WcStatus::Success);
    // Only the signaled tail pushed a CQE.
    EXPECT_EQ(posted.cqesPushed, 1u);
    EXPECT_EQ(cq.depth(), 1u);
    WorkCompletion wc = poller.waitOne(cq, clock);
    EXPECT_EQ(wc.wrId, wrs[3].wrId);
    EXPECT_TRUE(cq.empty());
}

TEST_F(NetFixture, DataLandsEvenWhenUnsignaled)
{
    QueuePair qp(fabric, 0, 1, cq);
    SimClock clock;
    std::uint64_t magic = 0x1122334455667788ULL;
    WorkRequest wr = writeWr(&magic, 4096, sizeof(magic));
    wr.signaled = false;
    qp.post(wr, clock);
    std::uint64_t check = 0;
    remote.read(4096, &check, sizeof(check));
    EXPECT_EQ(check, magic);
}

TEST_F(NetFixture, AccessOutsideRegionIsFatal)
{
    QueuePair qp(fabric, 0, 1, cq);
    SimClock clock;
    std::uint8_t b = 0;
    WorkRequest wr = writeWr(&b, 8 * MiB - 0, 1);   // one past the end
    EXPECT_THROW(qp.post(wr, clock), FatalError);
}

TEST_F(NetFixture, UnknownRegionKeyIsFatal)
{
    QueuePair qp(fabric, 0, 1, cq);
    SimClock clock;
    std::uint8_t b = 0;
    WorkRequest wr = writeWr(&b, 0, 1);
    wr.remoteKey = 0xdead;
    EXPECT_THROW(qp.post(wr, clock), FatalError);
}

TEST_F(NetFixture, NodeDownYieldsErrorCqe)
{
    QueuePair qp(fabric, 0, 1, cq);
    SimClock clock;
    fabric.setNodeDown(1, true);
    std::uint8_t b = 1;
    EXPECT_FALSE(qp.post(writeWr(&b, 0, 1), clock));
    WorkCompletion wc = poller.waitOne(cq, clock);
    EXPECT_EQ(wc.status, WcStatus::RemoteUnreachable);

    fabric.setNodeDown(1, false);
    EXPECT_TRUE(qp.post(writeWr(&b, 0, 1), clock));
}

TEST_F(NetFixture, NodeDelayRaisesLatency)
{
    QueuePair qp(fabric, 0, 1, cq);
    std::vector<std::uint8_t> buf(4096, 3);

    SimClock fast;
    qp.post(writeWr(buf.data(), 0, buf.size()), fast);
    poller.waitOne(cq, fast);

    fabric.setNodeDelay(1, 100000);   // +100us (network brownout §4.5)
    SimClock slow;
    qp.post(writeWr(buf.data(), 0, buf.size()), slow);
    poller.waitOne(cq, slow);
    EXPECT_GT(slow.now(), fast.now() + 90000);
}

TEST_F(NetFixture, TransferAccounting)
{
    QueuePair qp(fabric, 0, 1, cq);
    SimClock clock;
    std::vector<std::uint8_t> buf(256, 1);
    auto bytesBefore = fabric.bytesTransferred();
    qp.post(writeWr(buf.data(), 0, 256), clock);
    EXPECT_EQ(fabric.bytesTransferred(), bytesBefore + 256);
    EXPECT_EQ(qp.postedBytes(), 256u);
    EXPECT_EQ(qp.postedOps(), 1u);
}

TEST_F(NetFixture, CompletionTimestampsRespectWireTime)
{
    QueuePair qp(fabric, 0, 1, cq);
    SimClock clock;
    std::vector<std::uint8_t> small(64, 1), big(64 * KiB, 2);
    qp.post(writeWr(small.data(), 0, small.size()), clock);
    WorkCompletion first = poller.waitOne(cq, clock);
    Tick start = clock.now();
    qp.post(writeWr(big.data(), 0, big.size()), clock);
    WorkCompletion second = poller.waitOne(cq, clock);
    EXPECT_GT(second.completeAt - start,
              first.completeAt);   // 64KB takes longer than 64B
}

/** Payload-size sweep: byte-exact transfers at every size. */
class PayloadSweep : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(PayloadSweep, ByteExactTransfer)
{
    Fabric fabric;
    BackingStore local(1 * MiB), remote(2 * MiB);
    fabric.attachNode(0, &local);
    fabric.attachNode(1, &remote);
    MemoryRegion mr = fabric.registerRegion(1, 0, 2 * MiB);
    CompletionQueue cq;
    QueuePair qp(fabric, 0, 1, cq);
    Poller poller(fabric.latency());
    SimClock clock;

    std::size_t size = GetParam();
    std::vector<std::uint8_t> out(size);
    Rng rng(size);
    for (auto &b : out)
        b = static_cast<std::uint8_t>(rng.next());

    WorkRequest wr;
    wr.wrId = 1;
    wr.opcode = RdmaOpcode::Write;
    wr.localBuf = out.data();
    wr.remoteKey = mr.key;
    wr.remoteAddr = 777;
    wr.length = size;
    ASSERT_TRUE(qp.post(wr, clock));
    poller.waitOne(cq, clock);

    std::vector<std::uint8_t> in(size, 0);
    wr.opcode = RdmaOpcode::Read;
    wr.localBuf = in.data();
    ASSERT_TRUE(qp.post(wr, clock));
    poller.waitOne(cq, clock);
    EXPECT_EQ(in, out);
}

INSTANTIATE_TEST_SUITE_P(Sizes, PayloadSweep,
                         ::testing::Values(1, 63, 64, 65, 100, 4096,
                                           4097, 65536, 1048576));

} // namespace
} // namespace kona
