/**
 * @file
 * Differential oracles for the flat-array hot-path stores.
 *
 * The simulator's per-access path was rebuilt on flat arrays (see
 * DESIGN.md "Simulator performance"); these tests keep the legacy
 * list-/map-based implementations alive as reference models and drive
 * both through long randomized traces, asserting that every
 * observable — hit/miss outcomes, victim sequences, writeback counts,
 * flush/invalidate results, frame placement, dirty-line totals —
 * matches the historical behaviour exactly.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "cache/set_assoc_cache.h"
#include "common/rng.h"
#include "fpga/fmem_cache.h"
#include "mem/dirty_bitmap.h"

namespace kona {
namespace {

// ---------------------------------------------------------------------
// Legacy list-based SetAssocCache (the pre-flat-array implementation),
// kept verbatim as the behavioural reference.
// ---------------------------------------------------------------------

struct RefEviction
{
    Addr blockAddr = 0;
    bool dirty = false;
    bool valid = false;
};

class ListCacheRef
{
  public:
    explicit ListCacheRef(const CacheConfig &config) : config_(config)
    {
        numSets_ = config.sizeBytes /
                   (config.blockSize * config.associativity);
        sets_.resize(numSets_);
    }

    CacheOutcome
    access(Addr addr, AccessType type, RefEviction &eviction)
    {
        Addr blockNum = addr / config_.blockSize;
        Set &set = sets_[setIndex(blockNum)];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->tag == blockNum) {
                if (type == AccessType::Write)
                    it->dirty = true;
                set.splice(set.begin(), set, it);
                ++hits;
                eviction.valid = false;
                return CacheOutcome::Hit;
            }
        }
        ++misses;
        evictIfFull(set, eviction);
        set.push_front({blockNum, type == AccessType::Write});
        return CacheOutcome::Miss;
    }

    void
    fillDirty(Addr addr, RefEviction &eviction)
    {
        Addr blockNum = addr / config_.blockSize;
        Set &set = sets_[setIndex(blockNum)];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->tag == blockNum) {
                it->dirty = true;
                set.splice(set.begin(), set, it);
                eviction.valid = false;
                return;
            }
        }
        evictIfFull(set, eviction);
        set.push_front({blockNum, true});
    }

    bool
    contains(Addr addr) const
    {
        Addr blockNum = addr / config_.blockSize;
        const Set &set = sets_[setIndex(blockNum)];
        for (const Way &way : set) {
            if (way.tag == blockNum)
                return true;
        }
        return false;
    }

    std::optional<bool>
    invalidateBlock(Addr addr)
    {
        Addr blockNum = addr / config_.blockSize;
        Set &set = sets_[setIndex(blockNum)];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->tag == blockNum) {
                bool dirty = it->dirty;
                set.erase(it);
                return dirty;
            }
        }
        return std::nullopt;
    }

    std::vector<RefEviction>
    flushAll()
    {
        std::vector<RefEviction> evictions;
        for (Set &set : sets_) {
            for (const Way &way : set) {
                if (way.dirty)
                    ++writebacks;
                evictions.push_back({way.tag * config_.blockSize,
                                     way.dirty, true});
            }
            set.clear();
        }
        return evictions;
    }

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

  private:
    struct Way
    {
        Addr tag;
        bool dirty;
    };
    using Set = std::list<Way>;

    void
    evictIfFull(Set &set, RefEviction &eviction)
    {
        if (set.size() >= config_.associativity) {
            const Way &victim = set.back();
            if (victim.dirty)
                ++writebacks;
            eviction = {victim.tag * config_.blockSize, victim.dirty,
                        true};
            set.pop_back();
        } else {
            eviction.valid = false;
        }
    }

    std::size_t setIndex(Addr blockNum) const
    {
        return static_cast<std::size_t>(blockNum % numSets_);
    }

    CacheConfig config_;
    std::size_t numSets_;
    std::vector<Set> sets_;
};

CacheConfig
geometry(std::size_t sets, std::size_t ways, std::size_t block)
{
    CacheConfig cfg;
    cfg.name = "diff";
    cfg.blockSize = block;
    cfg.associativity = ways;
    cfg.sizeBytes = sets * ways * block;
    return cfg;
}

struct DiffGeometry
{
    std::size_t sets, ways, block;
};

class CacheDifferential : public ::testing::TestWithParam<DiffGeometry>
{
};

TEST_P(CacheDifferential, MatchesLegacyListImplementation)
{
    const DiffGeometry &g = GetParam();
    CacheConfig cfg = geometry(g.sets, g.ways, g.block);
    SetAssocCache cache(cfg);
    ListCacheRef ref(cfg);
    Rng rng(0xd1ffull + g.sets * 31 + g.ways);
    Addr span = g.sets * g.ways * g.block * 4;

    for (int i = 0; i < 20000; ++i) {
        Addr addr = rng.below(span);
        double dice = rng.uniform();
        CacheEviction ev;
        RefEviction refEv;
        if (dice < 0.60) {
            auto type = rng.chance(0.3) ? AccessType::Write
                                        : AccessType::Read;
            CacheOutcome got = cache.access(addr, type, ev);
            CacheOutcome want = ref.access(addr, type, refEv);
            ASSERT_EQ(got, want) << "access #" << i;
            ASSERT_EQ(ev.valid, refEv.valid) << "access #" << i;
            if (ev.valid) {
                ASSERT_EQ(ev.blockAddr, refEv.blockAddr)
                    << "access #" << i;
                ASSERT_EQ(ev.dirty, refEv.dirty) << "access #" << i;
            }
        } else if (dice < 0.75) {
            cache.fillDirty(addr, ev);
            ref.fillDirty(addr, refEv);
            ASSERT_EQ(ev.valid, refEv.valid) << "fill #" << i;
            if (ev.valid) {
                ASSERT_EQ(ev.blockAddr, refEv.blockAddr)
                    << "fill #" << i;
                ASSERT_EQ(ev.dirty, refEv.dirty) << "fill #" << i;
            }
        } else if (dice < 0.85) {
            ASSERT_EQ(cache.invalidateBlock(addr),
                      ref.invalidateBlock(addr))
                << "invalidate #" << i;
        } else if (dice < 0.95) {
            ASSERT_EQ(cache.contains(addr), ref.contains(addr))
                << "contains #" << i;
        } else if (dice < 0.98) {
            // holdsLineOfPage must agree with a per-line contains scan
            // over the reference model.
            Addr pn = addr / pageSize;
            bool expected = false;
            std::size_t blocks = cfg.blockSize < pageSize
                                     ? pageSize / cfg.blockSize
                                     : 1;
            for (std::size_t b = 0; b < blocks && !expected; ++b)
                expected = ref.contains(pn * pageSize +
                                        b * cfg.blockSize);
            ASSERT_EQ(cache.holdsLineOfPage(pn), expected)
                << "probe #" << i;
        } else {
            std::vector<CacheEviction> flushed;
            cache.flushAll(flushed);
            std::vector<RefEviction> refFlushed = ref.flushAll();
            ASSERT_EQ(flushed.size(), refFlushed.size())
                << "flush #" << i;
            for (std::size_t k = 0; k < flushed.size(); ++k) {
                ASSERT_EQ(flushed[k].blockAddr,
                          refFlushed[k].blockAddr);
                ASSERT_EQ(flushed[k].dirty, refFlushed[k].dirty);
            }
        }
        ASSERT_TRUE(cache.checkInvariants()) << "op #" << i;
    }
    EXPECT_EQ(cache.hits(), ref.hits);
    EXPECT_EQ(cache.misses(), ref.misses);
    EXPECT_EQ(cache.writebacks(), ref.writebacks);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheDifferential,
    ::testing::Values(DiffGeometry{1, 1, 64}, DiffGeometry{4, 2, 64},
                      DiffGeometry{16, 8, 64},
                      DiffGeometry{64, 16, 64},
                      DiffGeometry{8, 4, 4096},
                      DiffGeometry{2, 4, 1024}));

// ---------------------------------------------------------------------
// Legacy list-based FMemCache reference (per-set std::list plus
// per-set free-frame vectors, exactly as before the flat layout).
// ---------------------------------------------------------------------

class ListFMemRef
{
  public:
    ListFMemRef(std::size_t sizeBytes, std::size_t associativity)
        : assoc_(associativity)
    {
        std::size_t frames = sizeBytes / pageSize;
        numSets_ = frames / assoc_;
        sets_.resize(numSets_);
        freeFrames_.resize(numSets_);
        for (std::size_t set = 0; set < numSets_; ++set) {
            for (std::size_t way = 0; way < assoc_; ++way)
                freeFrames_[set].push_back(set * assoc_ + way);
        }
    }

    std::optional<std::size_t>
    lookup(Addr vpn)
    {
        Set &set = sets_[setOf(vpn)];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->vpn == vpn) {
                set.splice(set.begin(), set, it);
                ++hits;
                return it->frame;
            }
        }
        ++misses;
        return std::nullopt;
    }

    bool
    contains(Addr vpn) const
    {
        const Set &set = sets_[setOf(vpn)];
        for (const Way &way : set) {
            if (way.vpn == vpn)
                return true;
        }
        return false;
    }

    std::optional<std::size_t>
    frameOf(Addr vpn) const
    {
        const Set &set = sets_[setOf(vpn)];
        for (const Way &way : set) {
            if (way.vpn == vpn)
                return way.frame;
        }
        return std::nullopt;
    }

    std::size_t
    insert(Addr vpn)
    {
        std::size_t si = setOf(vpn);
        std::size_t frame = freeFrames_[si].back();
        freeFrames_[si].pop_back();
        sets_[si].push_front({vpn, frame, false});
        return frame;
    }

    void
    setEvictionInFlight(Addr vpn, bool inFlight)
    {
        for (Way &way : sets_[setOf(vpn)]) {
            if (way.vpn == vpn) {
                way.evicting = inFlight;
                return;
            }
        }
    }

    std::optional<FMemCache::Victim>
    victimFor(Addr vpn) const
    {
        std::size_t si = setOf(vpn);
        if (!freeFrames_[si].empty())
            return std::nullopt;
        for (auto it = sets_[si].rbegin(); it != sets_[si].rend();
             ++it) {
            if (!it->evicting)
                return FMemCache::Victim{it->vpn, it->frame};
        }
        const Way &lru = sets_[si].back();
        return FMemCache::Victim{lru.vpn, lru.frame};
    }

    void
    remove(Addr vpn)
    {
        std::size_t si = setOf(vpn);
        Set &set = sets_[si];
        for (auto it = set.begin(); it != set.end(); ++it) {
            if (it->vpn == vpn) {
                freeFrames_[si].push_back(it->frame);
                set.erase(it);
                return;
            }
        }
        FAIL() << "reference remove of absent page " << vpn;
    }

    std::vector<FMemCache::Victim>
    overOccupiedVictims(std::size_t freeWays) const
    {
        std::vector<FMemCache::Victim> victims;
        for (std::size_t si = 0; si < numSets_; ++si) {
            std::size_t free = freeFrames_[si].size();
            if (free >= freeWays)
                continue;
            std::size_t need = freeWays - free;
            for (auto it = sets_[si].rbegin();
                 need > 0 && it != sets_[si].rend(); ++it) {
                if (it->evicting)
                    continue;
                victims.push_back({it->vpn, it->frame});
                --need;
            }
        }
        return victims;
    }

    std::vector<Addr>
    residentPages() const
    {
        std::vector<Addr> pages;
        for (const Set &set : sets_) {
            for (const Way &way : set)
                pages.push_back(way.vpn);
        }
        return pages;
    }

    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

  private:
    struct Way
    {
        Addr vpn;
        std::size_t frame;
        bool evicting = false;
    };
    using Set = std::list<Way>;

    std::size_t setOf(Addr vpn) const { return vpn % numSets_; }

    std::size_t assoc_;
    std::size_t numSets_;
    std::vector<Set> sets_;
    std::vector<std::vector<std::size_t>> freeFrames_;
};

TEST(FMemDifferential, MatchesLegacyListImplementation)
{
    constexpr std::size_t sizeBytes = 16 * 4 * pageSize;  // 16 sets
    FMemCache fmem(sizeBytes, 4);
    ListFMemRef ref(sizeBytes, 4);
    Rng rng(0xf3e1ull);
    constexpr Addr vpnSpan = 16 * 4 * 3;   // 3x capacity

    for (int i = 0; i < 20000; ++i) {
        Addr vpn = rng.below(vpnSpan);
        double dice = rng.uniform();
        if (dice < 0.55) {
            // The serve-line pattern: lookup, evict a victim if the
            // set is full, insert.
            auto got = fmem.lookup(vpn);
            auto want = ref.lookup(vpn);
            ASSERT_EQ(got, want) << "lookup #" << i;
            if (!got.has_value()) {
                auto victim = fmem.victimFor(vpn);
                auto refVictim = ref.victimFor(vpn);
                ASSERT_EQ(victim.has_value(), refVictim.has_value());
                if (victim.has_value()) {
                    ASSERT_EQ(victim->vfmemPage,
                              refVictim->vfmemPage);
                    ASSERT_EQ(victim->frame, refVictim->frame);
                    fmem.remove(victim->vfmemPage);
                    ref.remove(refVictim->vfmemPage);
                }
                ASSERT_EQ(fmem.insert(vpn), ref.insert(vpn))
                    << "insert #" << i;
            }
        } else if (dice < 0.70) {
            ASSERT_EQ(fmem.contains(vpn), ref.contains(vpn));
            ASSERT_EQ(fmem.frameOf(vpn), ref.frameOf(vpn));
        } else if (dice < 0.80) {
            bool fence = rng.chance(0.5);
            fmem.setEvictionInFlight(vpn, fence);
            ref.setEvictionInFlight(vpn, fence);
        } else if (dice < 0.90) {
            std::size_t freeWays = 1 + rng.below(2);
            FMemCache::Victim got[64];
            std::size_t owed =
                fmem.overOccupiedVictims(freeWays, got, 64);
            ASSERT_LE(owed, 64u);
            auto want = ref.overOccupiedVictims(freeWays);
            ASSERT_EQ(owed, want.size()) << "pump #" << i;
            for (std::size_t k = 0; k < owed; ++k) {
                ASSERT_EQ(got[k].vfmemPage, want[k].vfmemPage);
                ASSERT_EQ(got[k].frame, want[k].frame);
            }
        } else if (dice < 0.97) {
            if (fmem.contains(vpn)) {
                fmem.remove(vpn);
                ref.remove(vpn);
            }
        } else {
            auto got = fmem.residentPages();
            auto want = ref.residentPages();
            ASSERT_EQ(got, want) << "resident #" << i;
        }
        ASSERT_TRUE(fmem.checkInvariants()) << "op #" << i;
        ASSERT_EQ(fmem.pagesResident(), ref.residentPages().size());
    }
    EXPECT_EQ(fmem.hits(), ref.hits);
    EXPECT_EQ(fmem.misses(), ref.misses);
}

// ---------------------------------------------------------------------
// DirtyLineBitmap: the incremental dirty-line count must equal a full
// recount after any mutation sequence.
// ---------------------------------------------------------------------

std::uint64_t
recount(const DirtyLineBitmap &bitmap)
{
    std::uint64_t total = 0;
    for (const auto &[pn, mask] : bitmap.pages())
        total += static_cast<std::uint64_t>(std::popcount(mask));
    return total;
}

TEST(DirtyBitmapDifferential, IncrementalCountMatchesRecount)
{
    DirtyLineBitmap bitmap;
    std::unordered_map<Addr, std::uint64_t> shadow;
    Rng rng(0xb17ull);
    constexpr Addr span = 64 * pageSize;

    for (int i = 0; i < 20000; ++i) {
        double dice = rng.uniform();
        if (dice < 0.45) {
            Addr addr = rng.below(span);
            bitmap.markLine(addr);
            shadow[pageNumber(addr)] |= 1ULL << lineInPage(addr);
        } else if (dice < 0.75) {
            Addr addr = rng.below(span);
            std::size_t size = 1 + rng.below(3 * pageSize);
            size = std::min<std::size_t>(size, span - addr);
            bitmap.markRange(addr, size);
            if (size > 0) {
                Addr first = alignDown(addr, cacheLineSize);
                Addr last = alignDown(addr + size - 1, cacheLineSize);
                for (Addr line = first; line <= last;
                     line += cacheLineSize)
                    shadow[pageNumber(line)] |= 1ULL
                                                << lineInPage(line);
            }
        } else if (dice < 0.85) {
            Addr pn = rng.below(span / pageSize);
            std::uint64_t mask = rng.next();
            bitmap.orMask(pn, mask);
            if (mask != 0)
                shadow[pn] |= mask;
        } else if (dice < 0.97) {
            Addr pn = rng.below(span / pageSize);
            std::uint64_t got = bitmap.clearPage(pn);
            std::uint64_t want = 0;
            auto it = shadow.find(pn);
            if (it != shadow.end()) {
                want = it->second;
                shadow.erase(it);
            }
            ASSERT_EQ(got, want) << "clear #" << i;
        } else {
            Addr pn = rng.below(span / pageSize);
            auto it = shadow.find(pn);
            ASSERT_EQ(bitmap.pageMask(pn),
                      it == shadow.end() ? 0 : it->second);
        }
        ASSERT_EQ(bitmap.totalDirtyLines(), recount(bitmap))
            << "op #" << i;
        ASSERT_EQ(bitmap.dirtyPages(), shadow.size()) << "op #" << i;
    }
    bitmap.clearAll();
    EXPECT_EQ(bitmap.totalDirtyLines(), 0u);
    EXPECT_EQ(bitmap.totalDirtyBytes(), 0u);
    EXPECT_EQ(bitmap.dirtyPages(), 0u);
}

} // namespace
} // namespace kona
