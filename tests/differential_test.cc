/**
 * @file
 * Differential tests: the remote-memory runtimes must be
 * byte-for-byte indistinguishable from plain local memory under
 * arbitrary access sequences — that is what "transparent" means.
 *
 * Each test drives an identical randomized op stream against a
 * reference BackingStore and a runtime, comparing every read, across
 * parameter sweeps (FMem pressure, eviction modes, replication,
 * personalities).
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/kona_runtime.h"
#include "core/vm_runtime.h"

namespace kona {
namespace {

/** Drive @p ops random reads/writes over [0, span) against both the
 *  runtime (at @p base) and a shadow buffer; verify every read. */
void
differentialRun(RemoteMemoryRuntime &runtime, Addr base,
                std::size_t span, std::uint64_t ops,
                std::uint64_t seed)
{
    std::vector<std::uint8_t> shadow(span, 0);
    Rng rng(seed);
    std::vector<std::uint8_t> buf;

    for (std::uint64_t i = 0; i < ops; ++i) {
        std::size_t size = 1 + rng.below(300);
        std::size_t offset = rng.below(span - size);
        if (rng.chance(0.5)) {
            buf.resize(size);
            for (auto &b : buf)
                b = static_cast<std::uint8_t>(rng.next());
            runtime.write(base + offset, buf.data(), size);
            std::copy(buf.begin(), buf.end(),
                      shadow.begin() + static_cast<long>(offset));
        } else {
            buf.assign(size, 0);
            runtime.read(base + offset, buf.data(), size);
            ASSERT_TRUE(std::equal(buf.begin(), buf.end(),
                                   shadow.begin() +
                                       static_cast<long>(offset)))
                << "divergence at op " << i << " offset " << offset
                << " size " << size;
        }
    }

    // Full sweep at the end, after flushing everything remote.
    // Page-sized reads so the sweep fits any local cache size.
    runtime.writebackAll();
    buf.assign(span, 0);
    for (std::size_t off = 0; off < span; off += pageSize)
        runtime.read(base + off, buf.data() + off, pageSize);
    ASSERT_EQ(buf, shadow);
}

struct KonaParams
{
    std::size_t fmemKb;
    EvictionMode mode;
    std::size_t replicas;
    std::uint64_t seed;
};

class KonaDifferential : public ::testing::TestWithParam<KonaParams>
{
};

TEST_P(KonaDifferential, MatchesPlainMemory)
{
    const KonaParams &p = GetParam();
    Fabric fabric;
    Controller controller(1 * MiB);
    MemoryNode nodeA(fabric, 1, 64 * MiB);
    MemoryNode nodeB(fabric, 2, 64 * MiB);
    controller.registerNode(nodeA);
    controller.registerNode(nodeB);

    KonaConfig cfg;
    cfg.fpga.vfmemSize = 16 * MiB;
    cfg.fpga.fmemSize = p.fmemKb * KiB;
    cfg.hierarchy = HierarchyConfig::scaled();
    cfg.evict.mode = p.mode;
    cfg.replicationFactor = p.replicas;
    KonaRuntime runtime(fabric, controller, 0, cfg);

    std::size_t span = 512 * KiB;   // up to 32x the smallest FMem
    Addr base = runtime.allocate(span, pageSize);
    differentialRun(runtime, base, span, 3000, p.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Pressure, KonaDifferential,
    ::testing::Values(
        KonaParams{16, EvictionMode::ClLog, 0, 1},    // brutal churn
        KonaParams{64, EvictionMode::ClLog, 0, 2},
        KonaParams{256, EvictionMode::ClLog, 0, 3},
        KonaParams{1024, EvictionMode::ClLog, 0, 4},  // mostly cached
        KonaParams{64, EvictionMode::FullPage, 0, 5},
        KonaParams{64, EvictionMode::ClLog, 1, 6},    // replicated
        KonaParams{16, EvictionMode::FullPage, 1, 7}));

struct VmParams
{
    std::size_t cachePages;
    bool writeProtect;
    VmPersonality personality;
    std::uint64_t seed;
};

class VmDifferential : public ::testing::TestWithParam<VmParams>
{
};

TEST_P(VmDifferential, MatchesPlainMemory)
{
    const VmParams &p = GetParam();
    Fabric fabric;
    Controller controller(1 * MiB);
    MemoryNode node(fabric, 1, 64 * MiB);
    controller.registerNode(node);

    VmConfig cfg;
    cfg.localCachePages = p.cachePages;
    cfg.writeProtectTracking = p.writeProtect;
    cfg.personality = p.personality;
    cfg.hierarchy = HierarchyConfig::scaled();
    VmRuntime runtime(fabric, controller, 0, cfg);

    std::size_t span = 512 * KiB;
    Addr base = runtime.allocate(span, pageSize);
    differentialRun(runtime, base, span, 3000, p.seed);
}

INSTANTIATE_TEST_SUITE_P(
    Pressure, VmDifferential,
    ::testing::Values(
        VmParams{8, true, VmPersonality::KonaVm, 11},
        VmParams{32, true, VmPersonality::KonaVm, 12},
        VmParams{32, false, VmPersonality::KonaVm, 13},  // NoWP
        VmParams{512, true, VmPersonality::KonaVm, 14},
        VmParams{32, true, VmPersonality::LegoOs, 15},
        VmParams{32, true, VmPersonality::Infiniswap, 16}));

/** Cross-runtime equivalence: the same op stream leaves Kona and the
 *  VM baseline with identical memory images. */
TEST(CrossRuntime, KonaAndVmConverge)
{
    auto image = [](bool useKona) {
        Fabric fabric;
        Controller controller(1 * MiB);
        MemoryNode node(fabric, 1, 64 * MiB);
        controller.registerNode(node);
        std::unique_ptr<RemoteMemoryRuntime> runtime;
        if (useKona) {
            KonaConfig cfg;
            cfg.fpga.fmemSize = 64 * KiB;
            cfg.hierarchy = HierarchyConfig::scaled();
            runtime = std::make_unique<KonaRuntime>(fabric, controller,
                                                    0, cfg);
        } else {
            VmConfig cfg;
            cfg.localCachePages = 16;
            cfg.hierarchy = HierarchyConfig::scaled();
            runtime = std::make_unique<VmRuntime>(fabric, controller,
                                                  0, cfg);
        }
        std::size_t span = 128 * KiB;
        Addr base = runtime->allocate(span, pageSize);
        Rng rng(99);
        std::vector<std::uint8_t> buf;
        for (int i = 0; i < 2000; ++i) {
            std::size_t size = 1 + rng.below(200);
            std::size_t offset = rng.below(span - size);
            buf.resize(size);
            for (auto &b : buf)
                b = static_cast<std::uint8_t>(rng.next());
            runtime->write(base + offset, buf.data(), size);
        }
        std::vector<std::uint8_t> out(span);
        for (std::size_t off = 0; off < span; off += pageSize)
            runtime->read(base + off, out.data() + off, pageSize);
        return out;
    };
    EXPECT_EQ(image(true), image(false));
}

} // namespace
} // namespace kona
