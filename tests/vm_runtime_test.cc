/**
 * @file
 * Tests for the virtual-memory baseline family: fault accounting
 * (major on first touch, minor on first write), page-granularity
 * eviction with TLB shootdowns, the NoWP variant, personality latency
 * ordering, and byte-exact data under cache pressure.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/vm_runtime.h"

namespace kona {
namespace {

class VmFixture : public ::testing::Test
{
  protected:
    explicit VmFixture(VmConfig cfg = makeConfig())
        : controller(1 * MiB)
    {
        node = std::make_unique<MemoryNode>(fabric, 20, 128 * MiB);
        controller.registerNode(*node);
        runtime = std::make_unique<VmRuntime>(fabric, controller, 0,
                                              cfg);
    }

    static VmConfig
    makeConfig()
    {
        VmConfig cfg;
        cfg.localCachePages = 64;
        cfg.hierarchy = HierarchyConfig::scaled();
        return cfg;
    }

    Fabric fabric;
    Controller controller;
    std::unique_ptr<MemoryNode> node;
    std::unique_ptr<VmRuntime> runtime;
};

TEST_F(VmFixture, RoundTripSmall)
{
    Addr a = runtime->allocate(500);
    std::vector<std::uint8_t> data(500);
    Rng rng(1);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    runtime->write(a, data.data(), data.size());
    std::vector<std::uint8_t> check(500);
    runtime->read(a, check.data(), check.size());
    EXPECT_EQ(check, data);
}

TEST_F(VmFixture, MajorFaultOnFirstTouchOnly)
{
    Addr a = runtime->allocate(4 * pageSize, pageSize);
    EXPECT_EQ(runtime->stats().majorFaults, 0u);
    std::uint64_t sink = runtime->load<std::uint64_t>(a);
    sink += runtime->load<std::uint64_t>(a + 8);
    (void)sink;
    EXPECT_EQ(runtime->stats().majorFaults, 1u);
    runtime->load<std::uint64_t>(a + pageSize);
    EXPECT_EQ(runtime->stats().majorFaults, 2u);
}

TEST_F(VmFixture, MinorFaultOnFirstWriteOnly)
{
    Addr a = runtime->allocate(pageSize, pageSize);
    runtime->load<std::uint64_t>(a);             // major only
    EXPECT_EQ(runtime->stats().minorFaults, 0u);
    runtime->store<std::uint64_t>(a, 1);          // minor (WP fault)
    EXPECT_EQ(runtime->stats().minorFaults, 1u);
    runtime->store<std::uint64_t>(a + 64, 2);     // already writable
    EXPECT_EQ(runtime->stats().minorFaults, 1u);
}

TEST_F(VmFixture, TwoFaultsPerWrittenPage)
{
    // §6.1: "Kona-VM incurs two page faults for caching a remote page"
    // when the page is written.
    Addr a = runtime->allocate(8 * pageSize, pageSize);
    for (int p = 0; p < 8; ++p)
        runtime->store<std::uint64_t>(a + p * pageSize, p);
    RuntimeStats stats = runtime->stats();
    EXPECT_EQ(stats.majorFaults, 8u);
    EXPECT_EQ(stats.minorFaults, 8u);
}

TEST_F(VmFixture, EvictionTriggersTlbShootdowns)
{
    // 64-page cache; touch 100 pages.
    Addr a = runtime->allocate(100 * pageSize, pageSize);
    for (int p = 0; p < 100; ++p)
        runtime->store<std::uint64_t>(a + p * pageSize, p);
    RuntimeStats stats = runtime->stats();
    EXPECT_GE(stats.pagesEvicted, 36u);
    EXPECT_EQ(stats.tlbShootdowns, stats.pagesEvicted);
    EXPECT_EQ(runtime->residentPages(), 64u);
}

TEST_F(VmFixture, DataSurvivesEviction)
{
    Addr a = runtime->allocate(128 * pageSize, pageSize);
    Rng rng(2);
    std::vector<std::uint64_t> expected(128);
    for (std::size_t p = 0; p < 128; ++p) {
        expected[p] = rng.next();
        runtime->store<std::uint64_t>(a + p * pageSize + 24,
                                      expected[p]);
    }
    for (std::size_t p = 0; p < 128; ++p) {
        EXPECT_EQ(
            runtime->load<std::uint64_t>(a + p * pageSize + 24),
            expected[p])
            << "page " << p;
    }
}

TEST_F(VmFixture, CleanPagesEvictSilently)
{
    Addr a = runtime->allocate(100 * pageSize, pageSize);
    std::uint64_t sink = 0;
    for (int p = 0; p < 100; ++p)
        sink += runtime->load<std::uint64_t>(a + p * pageSize);
    (void)sink;
    RuntimeStats stats = runtime->stats();
    EXPECT_GT(stats.silentEvictions, 0u);
    EXPECT_EQ(stats.evictionBytesOnWire, 0u);
}

TEST_F(VmFixture, EvictionWritesWholePages)
{
    Addr a = runtime->allocate(100 * pageSize, pageSize);
    for (int p = 0; p < 100; ++p)
        runtime->store<std::uint64_t>(a + p * pageSize, p);
    runtime->writebackAll();
    RuntimeStats stats = runtime->stats();
    // Every dirty page moved 4KB even though only 8B changed.
    EXPECT_EQ(stats.evictionBytesOnWire,
              stats.pagesEvicted * pageSize -
                  stats.silentEvictions * pageSize);
}

TEST_F(VmFixture, WritebackAllFlushesEverything)
{
    Addr a = runtime->allocate(16 * pageSize, pageSize);
    for (int p = 0; p < 16; ++p)
        runtime->store<std::uint64_t>(a + p * pageSize, 0x77);
    runtime->writebackAll();
    EXPECT_EQ(runtime->residentPages(), 0u);
    // Remote image is byte exact.
    for (int p = 0; p < 16; ++p) {
        EXPECT_EQ(runtime->load<std::uint64_t>(a + p * pageSize),
                  0x77u);
    }
}

TEST_F(VmFixture, FaultLatencyChargedToApp)
{
    Addr a = runtime->allocate(pageSize, pageSize);
    Tick before = runtime->appClock().now();
    runtime->load<std::uint64_t>(a);
    Tick faultCost = runtime->appClock().now() - before;
    EXPECT_GT(faultCost, 10000u);   // Kona-VM fetch ~10.5us
    before = runtime->appClock().now();
    runtime->load<std::uint64_t>(a + 8);
    EXPECT_LT(runtime->appClock().now() - before, 1000u);
}

TEST(VmVariants, NoWpSkipsMinorFaultsButWritesEverythingBack)
{
    Fabric fabric;
    Controller controller(1 * MiB);
    MemoryNode node(fabric, 1, 128 * MiB);
    controller.registerNode(node);

    VmConfig cfg;
    cfg.localCachePages = 32;
    cfg.hierarchy = HierarchyConfig::scaled();
    cfg.writeProtectTracking = false;
    VmRuntime runtime(fabric, controller, 0, cfg);
    EXPECT_EQ(runtime.name(), "Kona-VM-NoWP");

    Addr a = runtime.allocate(64 * pageSize, pageSize);
    std::uint64_t sink = 0;
    for (int p = 0; p < 64; ++p)
        sink += runtime.load<std::uint64_t>(a + p * pageSize);
    (void)sink;
    runtime.writebackAll();
    RuntimeStats stats = runtime.stats();
    EXPECT_EQ(stats.minorFaults, 0u);
    // Without tracking, even untouched-by-write pages ship 4KB each.
    EXPECT_EQ(stats.silentEvictions, 0u);
    EXPECT_EQ(stats.evictionBytesOnWire, 64u * pageSize);
}

TEST(VmVariants, PersonalityLatencyOrdering)
{
    auto coldFetchTime = [](VmPersonality personality) {
        Fabric fabric;
        Controller controller(1 * MiB);
        MemoryNode node(fabric, 1, 64 * MiB);
        controller.registerNode(node);
        VmConfig cfg;
        cfg.personality = personality;
        cfg.hierarchy = HierarchyConfig::scaled();
        VmRuntime runtime(fabric, controller, 0, cfg);
        Addr a = runtime.allocate(pageSize, pageSize);
        Tick before = runtime.appClock().now();
        runtime.load<std::uint64_t>(a);
        return runtime.appClock().now() - before;
    };

    Tick konaVm = coldFetchTime(VmPersonality::KonaVm);
    Tick lego = coldFetchTime(VmPersonality::LegoOs);
    Tick infini = coldFetchTime(VmPersonality::Infiniswap);
    // §6.2: Infiniswap ~40us >> LegoOS ~10us ~= Kona-VM.
    EXPECT_GT(infini, 3 * lego);
    EXPECT_NEAR(static_cast<double>(konaVm),
                static_cast<double>(lego),
                0.2 * static_cast<double>(lego));
}

TEST(VmVariants, NamesMatchPersonalities)
{
    Fabric fabric;
    Controller controller(1 * MiB);
    MemoryNode node(fabric, 1, 64 * MiB);
    controller.registerNode(node);
    for (auto [personality, name] :
         std::vector<std::pair<VmPersonality, std::string>>{
             {VmPersonality::KonaVm, "Kona-VM"},
             {VmPersonality::LegoOs, "LegoOS"},
             {VmPersonality::Infiniswap, "Infiniswap"}}) {
        VmConfig cfg;
        cfg.personality = personality;
        VmRuntime runtime(fabric, controller, 0, cfg);
        EXPECT_EQ(runtime.name(), name);
    }
}

TEST_F(VmFixture, MultiPageAccessStaysResident)
{
    // An access spanning pages must not evict its own span.
    Addr a = runtime->allocate(80 * pageSize, pageSize);
    // Fill the cache with other pages first.
    for (int p = 16; p < 80; ++p)
        runtime->store<std::uint64_t>(a + p * pageSize, p);
    // A 3-page write at the front.
    std::vector<std::uint8_t> big(3 * pageSize, 0x5a);
    runtime->write(a, big.data(), big.size());
    std::vector<std::uint8_t> check(3 * pageSize);
    runtime->read(a, check.data(), check.size());
    EXPECT_EQ(check, big);
}

TEST_F(VmFixture, SpanLargerThanCacheIsFatal)
{
    VmConfig cfg = makeConfig();
    cfg.localCachePages = 4;
    VmRuntime tiny(fabric, controller, 1, cfg);
    Addr b = tiny.allocate(8 * pageSize, pageSize);
    std::vector<std::uint8_t> ok(4 * pageSize, 1);
    EXPECT_NO_THROW(tiny.write(b, ok.data(), ok.size()));
    std::vector<std::uint8_t> tooBig(5 * pageSize, 1);
    EXPECT_THROW(tiny.write(b, tooBig.data(), tooBig.size()),
                 FatalError);
}

} // namespace
} // namespace kona
