/**
 * @file
 * Unit tests for src/mem: backing store, page table, TLB, region
 * allocator, dirty bitmaps and page snapshots — including property
 * sweeps over randomized allocation workloads.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "mem/backing_store.h"
#include "mem/dirty_bitmap.h"
#include "mem/page_snapshot.h"
#include "mem/page_table.h"
#include "mem/region_allocator.h"
#include "mem/tlb.h"

namespace kona {
namespace {

TEST(BackingStore, ZeroFilledOnFirstTouch)
{
    BackingStore store(1 * MiB);
    std::uint8_t buf[16];
    store.read(1234, buf, sizeof(buf));
    for (std::uint8_t b : buf)
        EXPECT_EQ(b, 0);
    EXPECT_EQ(store.residentPages(), 0u);   // reads do not materialize
}

TEST(BackingStore, ReadWriteRoundTrip)
{
    BackingStore store(1 * MiB);
    const char msg[] = "disaggregated";
    store.write(5000, msg, sizeof(msg));
    char out[sizeof(msg)];
    store.read(5000, out, sizeof(out));
    EXPECT_STREQ(out, msg);
    EXPECT_EQ(store.residentPages(), 1u);
}

TEST(BackingStore, CrossPageAccess)
{
    BackingStore store(1 * MiB);
    std::vector<std::uint8_t> data(3 * pageSize);
    Rng rng(1);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    Addr addr = pageSize - 100;   // spans four pages
    store.write(addr, data.data(), data.size());
    std::vector<std::uint8_t> out(data.size());
    store.read(addr, out.data(), out.size());
    EXPECT_EQ(data, out);
    EXPECT_EQ(store.residentPages(), 4u);
}

TEST(BackingStore, OutOfBoundsIsFatal)
{
    BackingStore store(pageSize);
    std::uint8_t b = 0;
    EXPECT_THROW(store.read(pageSize, &b, 1), PanicError);
    EXPECT_THROW(store.write(pageSize - 1, &b, 2), PanicError);
}

TEST(BackingStore, DropPageForgetsData)
{
    BackingStore store(1 * MiB);
    std::uint32_t value = 0xdeadbeef;
    store.write(0, &value, sizeof(value));
    store.dropPage(0);
    std::uint32_t out = 1;
    store.read(0, &out, sizeof(out));
    EXPECT_EQ(out, 0u);
}

TEST(PageTable, MapTranslateUnmap)
{
    PageTable pt;
    EXPECT_EQ(pt.translate(7, AccessType::Read),
              TranslationResult::NotPresent);
    pt.map(7, 42);
    EXPECT_EQ(pt.translate(7, AccessType::Read), TranslationResult::Ok);
    EXPECT_EQ(pt.entry(7)->physPage, 42u);
    EXPECT_TRUE(pt.entry(7)->accessed);
    pt.unmap(7);
    EXPECT_EQ(pt.translate(7, AccessType::Read),
              TranslationResult::NotPresent);
}

TEST(PageTable, WriteProtectFaultsOnWriteOnly)
{
    PageTable pt;
    pt.map(1, 1);
    pt.writeProtect(1);
    EXPECT_EQ(pt.translate(1, AccessType::Read), TranslationResult::Ok);
    EXPECT_EQ(pt.translate(1, AccessType::Write),
              TranslationResult::WriteProtected);
    EXPECT_FALSE(pt.entry(1)->dirty);
    pt.enableWrite(1);
    EXPECT_EQ(pt.translate(1, AccessType::Write),
              TranslationResult::Ok);
    EXPECT_TRUE(pt.entry(1)->dirty);
}

TEST(PageTable, DirtyBitSetOnWrite)
{
    PageTable pt;
    pt.map(3, 3);
    EXPECT_FALSE(pt.entry(3)->dirty);
    pt.translate(3, AccessType::Read);
    EXPECT_FALSE(pt.entry(3)->dirty);
    pt.translate(3, AccessType::Write);
    EXPECT_TRUE(pt.entry(3)->dirty);
    pt.clearDirty(3);
    EXPECT_FALSE(pt.entry(3)->dirty);
}

TEST(PageTable, NotPresentAfterEviction)
{
    PageTable pt;
    pt.map(5, 5);
    pt.markNotPresent(5);
    EXPECT_EQ(pt.translate(5, AccessType::Read),
              TranslationResult::NotPresent);
    pt.markPresent(5);
    EXPECT_EQ(pt.translate(5, AccessType::Read), TranslationResult::Ok);
}

TEST(PageTable, CountsPteUpdates)
{
    PageTable pt;
    auto before = pt.pteUpdates();
    pt.map(1, 1);
    pt.writeProtect(1);
    pt.enableWrite(1);
    EXPECT_EQ(pt.pteUpdates(), before + 3);
}

TEST(Tlb, HitMissAndLru)
{
    Tlb tlb(2);
    EXPECT_FALSE(tlb.lookup(1));
    tlb.insert(1);
    tlb.insert(2);
    EXPECT_TRUE(tlb.lookup(1));   // 1 becomes MRU
    tlb.insert(3);                // evicts 2 (LRU)
    EXPECT_TRUE(tlb.lookup(1));
    EXPECT_FALSE(tlb.lookup(2));
    EXPECT_TRUE(tlb.lookup(3));
    EXPECT_EQ(tlb.occupancy(), 2u);
}

TEST(Tlb, InvalidationsAndFlush)
{
    Tlb tlb(8);
    tlb.insert(1);
    tlb.insert(2);
    tlb.invalidatePage(1);
    EXPECT_FALSE(tlb.lookup(1));
    EXPECT_TRUE(tlb.lookup(2));
    EXPECT_EQ(tlb.invalidations(), 1u);
    tlb.invalidateAll();
    EXPECT_FALSE(tlb.lookup(2));
    EXPECT_EQ(tlb.flushes(), 1u);
}

TEST(RegionAllocator, BasicAllocFree)
{
    RegionAllocator alloc(1000, 4096);
    auto a = alloc.allocate(100);
    auto b = alloc.allocate(200);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_NE(*a, *b);
    EXPECT_EQ(alloc.bytesInUse(), 300u);
    alloc.deallocate(*a);
    alloc.deallocate(*b);
    EXPECT_EQ(alloc.bytesInUse(), 0u);
    EXPECT_TRUE(alloc.checkInvariants());
}

TEST(RegionAllocator, AlignmentHonored)
{
    RegionAllocator alloc(1, 1 * MiB);
    for (std::size_t align : {16ul, 64ul, 4096ul}) {
        auto a = alloc.allocate(10, align);
        ASSERT_TRUE(a.has_value());
        EXPECT_EQ(*a % align, 0u);
    }
    EXPECT_TRUE(alloc.checkInvariants());
}

TEST(RegionAllocator, ExhaustionReturnsNullopt)
{
    RegionAllocator alloc(0, 1024);
    auto a = alloc.allocate(1024);
    ASSERT_TRUE(a.has_value());
    EXPECT_FALSE(alloc.allocate(1).has_value());
    alloc.deallocate(*a);
    EXPECT_TRUE(alloc.allocate(1024).has_value());
}

TEST(RegionAllocator, CoalescingReassemblesRegion)
{
    RegionAllocator alloc(0, 4096);
    std::vector<Addr> blocks;
    for (int i = 0; i < 4; ++i) {
        auto a = alloc.allocate(1024, 1);
        ASSERT_TRUE(a.has_value());
        blocks.push_back(*a);
    }
    // Free out of order; afterwards one full-size block must fit.
    alloc.deallocate(blocks[2]);
    alloc.deallocate(blocks[0]);
    alloc.deallocate(blocks[3]);
    alloc.deallocate(blocks[1]);
    EXPECT_TRUE(alloc.checkInvariants());
    EXPECT_TRUE(alloc.allocate(4096, 1).has_value());
}

TEST(RegionAllocator, ExtendAddsCapacity)
{
    RegionAllocator alloc(0, 1024);
    ASSERT_TRUE(alloc.allocate(1024, 1).has_value());
    EXPECT_FALSE(alloc.allocate(512, 1).has_value());
    alloc.extend(1024);
    EXPECT_TRUE(alloc.allocate(512, 1).has_value());
    EXPECT_EQ(alloc.totalSize(), 2048u);
    EXPECT_TRUE(alloc.checkInvariants());
}

TEST(RegionAllocator, DoubleFreeIsFatal)
{
    RegionAllocator alloc(0, 1024);
    auto a = alloc.allocate(64);
    alloc.deallocate(*a);
    EXPECT_THROW(alloc.deallocate(*a), PanicError);
}

/** Property sweep: random alloc/free traffic preserves invariants. */
class RegionAllocatorProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(RegionAllocatorProperty, RandomTrafficKeepsInvariants)
{
    Rng rng(GetParam());
    RegionAllocator alloc(pageSize, 256 * KiB);
    std::vector<Addr> live;
    for (int step = 0; step < 2000; ++step) {
        if (live.empty() || rng.chance(0.6)) {
            std::size_t size = 1 + rng.below(2000);
            std::size_t align = 1ULL << rng.below(7);
            auto a = alloc.allocate(size, align);
            if (a.has_value()) {
                EXPECT_EQ(*a % align, 0u);
                EXPECT_EQ(alloc.allocationSize(*a), size);
                live.push_back(*a);
            }
        } else {
            std::size_t victim = rng.below(live.size());
            alloc.deallocate(live[victim]);
            live[victim] = live.back();
            live.pop_back();
        }
        if (step % 200 == 0)
            ASSERT_TRUE(alloc.checkInvariants());
    }
    for (Addr a : live)
        alloc.deallocate(a);
    EXPECT_TRUE(alloc.checkInvariants());
    EXPECT_EQ(alloc.bytesInUse(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegionAllocatorProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(DirtyLineBitmap, MarkLineAndRange)
{
    DirtyLineBitmap bitmap;
    bitmap.markLine(0);
    bitmap.markLine(64);
    EXPECT_EQ(bitmap.pageMask(0), 0b11u);
    bitmap.markRange(pageSize + 100, 200);   // lines 1..4 of page 1
    EXPECT_EQ(bitmap.pageMask(1), 0b11110u);
    EXPECT_EQ(bitmap.dirtyLines(1), 4u);
}

TEST(DirtyLineBitmap, RangeSpanningPages)
{
    DirtyLineBitmap bitmap;
    bitmap.markRange(pageSize - 64, 128);   // last line of p0, first of p1
    EXPECT_EQ(bitmap.pageMask(0), 1ULL << 63);
    EXPECT_EQ(bitmap.pageMask(1), 1ULL);
}

TEST(DirtyLineBitmap, TotalsAndClear)
{
    DirtyLineBitmap bitmap;
    bitmap.markRange(0, pageSize);   // whole page 0
    bitmap.markLine(pageSize);
    EXPECT_EQ(bitmap.totalDirtyLines(), 65u);
    EXPECT_EQ(bitmap.totalDirtyBytes(), 65u * cacheLineSize);
    EXPECT_EQ(bitmap.dirtyPages(), 2u);
    EXPECT_EQ(bitmap.clearPage(0), ~0ULL);
    EXPECT_EQ(bitmap.pageMask(0), 0u);
    EXPECT_EQ(bitmap.dirtyPages(), 1u);
    bitmap.clearAll();
    EXPECT_EQ(bitmap.dirtyPages(), 0u);
}

TEST(DirtyLineBitmap, SegmentCounting)
{
    EXPECT_EQ(segmentCount(0), 0u);
    EXPECT_EQ(segmentCount(0b1), 1u);
    EXPECT_EQ(segmentCount(0b1011), 2u);
    EXPECT_EQ(segmentCount(0b1010101), 4u);
    EXPECT_EQ(segmentCount(~0ULL), 1u);
    EXPECT_EQ(segmentCount(1ULL << 63 | 1ULL), 2u);
}

TEST(PageSnapshot, DiffDetectsChangedLines)
{
    BackingStore store(1 * MiB);
    PageSnapshotStore snaps;
    std::uint64_t v = 1;
    store.write(0, &v, sizeof(v));
    snaps.capture(0, store);
    EXPECT_EQ(snaps.diffLines(0, store), 0u);

    v = 2;
    store.write(0, &v, sizeof(v));            // line 0
    store.write(10 * cacheLineSize, &v, 8);   // line 10
    std::uint64_t mask = snaps.diffLines(0, store);
    EXPECT_EQ(mask, (1ULL << 0) | (1ULL << 10));
}

TEST(PageSnapshot, DiffAndRefreshResets)
{
    BackingStore store(1 * MiB);
    PageSnapshotStore snaps;
    snaps.capture(0, store);
    std::uint32_t v = 7;
    store.write(100, &v, sizeof(v));
    EXPECT_NE(snaps.diffAndRefresh(0, store), 0u);
    EXPECT_EQ(snaps.diffAndRefresh(0, store), 0u);   // now clean
}

TEST(PageSnapshot, UncapturedPagesDiffClean)
{
    BackingStore store(1 * MiB);
    PageSnapshotStore snaps;
    EXPECT_EQ(snaps.diffLines(99, store), 0u);
    // diffAndRefresh captures on first call.
    EXPECT_EQ(snaps.diffAndRefresh(99, store), 0u);
    EXPECT_TRUE(snaps.has(99));
    snaps.release(99);
    EXPECT_FALSE(snaps.has(99));
}

TEST(PageSnapshot, WriteOfSameValueIsClean)
{
    BackingStore store(1 * MiB);
    PageSnapshotStore snaps;
    std::uint64_t v = 0xabcdef;
    store.write(0, &v, sizeof(v));
    snaps.capture(0, store);
    store.write(0, &v, sizeof(v));   // identical bytes
    EXPECT_EQ(snaps.diffLines(0, store), 0u);
}

} // namespace
} // namespace kona
