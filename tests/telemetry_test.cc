/**
 * @file
 * Tests for the unified telemetry layer: the metric registry and its
 * JSON export, the sim-time span tracer (Chrome trace-event output,
 * flight-recorder ring, crash dumps), and the contract that the legacy
 * *Stats snapshots are views over the same registry storage — the
 * aggregate counters in a metrics export must exactly match
 * RuntimeStats, and stats()/reliability() can never diverge.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>

#include "core/kona_runtime.h"
#include "core/vm_runtime.h"
#include "telemetry/metric_registry.h"
#include "telemetry/trace_session.h"

namespace kona {
namespace {

// ---------------------------------------------------------------------
// A minimal JSON parser: enough to validate that the exported metrics
// and Chrome trace files are well-formed and to query their contents.
// ---------------------------------------------------------------------

struct JsonValue
{
    enum Kind
    {
        Null,
        Bool,
        Number,
        String,
        Array,
        Object
    };
    Kind kind = Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;

    const JsonValue *
    find(const std::string &key) const
    {
        auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

class JsonParser
{
  public:
    explicit JsonParser(std::string_view text) : text_(text) {}

    std::optional<JsonValue>
    parse()
    {
        auto v = value();
        skipWs();
        if (!v.has_value() || pos_ != text_.size())
            return std::nullopt;
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    std::optional<JsonValue>
    value()
    {
        skipWs();
        if (pos_ >= text_.size())
            return std::nullopt;
        char c = text_[pos_];
        if (c == '{')
            return object();
        if (c == '[')
            return array();
        if (c == '"')
            return string();
        if (c == 't' || c == 'f')
            return boolean();
        if (c == 'n') {
            if (text_.substr(pos_, 4) != "null")
                return std::nullopt;
            pos_ += 4;
            return JsonValue{};
        }
        return number();
    }

    std::optional<JsonValue>
    object()
    {
        if (!consume('{'))
            return std::nullopt;
        JsonValue v;
        v.kind = JsonValue::Object;
        skipWs();
        if (consume('}'))
            return v;
        while (true) {
            auto key = string();
            if (!key.has_value() || !consume(':'))
                return std::nullopt;
            auto val = value();
            if (!val.has_value())
                return std::nullopt;
            v.object.emplace(key->str, std::move(*val));
            if (consume(','))
                continue;
            if (consume('}'))
                return v;
            return std::nullopt;
        }
    }

    std::optional<JsonValue>
    array()
    {
        if (!consume('['))
            return std::nullopt;
        JsonValue v;
        v.kind = JsonValue::Array;
        skipWs();
        if (consume(']'))
            return v;
        while (true) {
            auto val = value();
            if (!val.has_value())
                return std::nullopt;
            v.array.push_back(std::move(*val));
            if (consume(','))
                continue;
            if (consume(']'))
                return v;
            return std::nullopt;
        }
    }

    std::optional<JsonValue>
    string()
    {
        if (!consume('"'))
            return std::nullopt;
        JsonValue v;
        v.kind = JsonValue::String;
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') {
                if (pos_ + 1 >= text_.size())
                    return std::nullopt;
                ++pos_;
            }
            v.str += text_[pos_++];
        }
        if (pos_ >= text_.size())
            return std::nullopt;
        ++pos_;   // closing quote
        return v;
    }

    std::optional<JsonValue>
    boolean()
    {
        JsonValue v;
        v.kind = JsonValue::Bool;
        if (text_.substr(pos_, 4) == "true") {
            pos_ += 4;
            v.boolean = true;
            return v;
        }
        if (text_.substr(pos_, 5) == "false") {
            pos_ += 5;
            return v;
        }
        return std::nullopt;
    }

    std::optional<JsonValue>
    number()
    {
        std::size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            return std::nullopt;
        JsonValue v;
        v.kind = JsonValue::Number;
        v.number = std::stod(std::string(text_.substr(start,
                                                      pos_ - start)));
        return v;
    }

    std::string_view text_;
    std::size_t pos_ = 0;
};

std::optional<JsonValue>
parseJson(const std::string &text)
{
    return JsonParser(text).parse();
}

// ---------------------------------------------------------------------
// Histograms.
// ---------------------------------------------------------------------

TEST(LatencyHistogram, EmptyHistogramIsAllZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.mean(), 0.0);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
    EXPECT_DOUBLE_EQ(h.p99(), 0.0);
}

TEST(LatencyHistogram, SingleRepeatedValueHasExactQuantiles)
{
    LatencyHistogram h;
    for (int i = 0; i < 1000; ++i)
        h.record(100.0);
    EXPECT_EQ(h.count(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), 100.0);
    EXPECT_DOUBLE_EQ(h.minValue(), 100.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 100.0);
    // The bucket upper bound (127) is clamped to the observed max.
    EXPECT_DOUBLE_EQ(h.p50(), 100.0);
    EXPECT_DOUBLE_EQ(h.p95(), 100.0);
    EXPECT_DOUBLE_EQ(h.p99(), 100.0);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

TEST(LatencyHistogram, QuantilesAreConservativeWithinOneOctave)
{
    LatencyHistogram h;
    for (int v = 1; v <= 1000; ++v)
        h.record(static_cast<double>(v));
    // Conservative: never understate, never exceed 2x (one octave),
    // never exceed the observed max.
    for (double q : {0.10, 0.50, 0.90, 0.95, 0.99}) {
        double truth = q * 1000.0;
        double est = h.quantile(q);
        EXPECT_GE(est, truth) << "q=" << q;
        EXPECT_LE(est, 2.0 * truth) << "q=" << q;
        EXPECT_LE(est, 1000.0) << "q=" << q;
    }
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1000.0);
}

TEST(LatencyHistogram, FirstSampleSetsBothMinAndMax)
{
    // Regression guard: a single recorded value must become both the
    // min and the max, even when it is far above the initial bucket
    // range — a first-sample init bug would leave minValue() at 0 (or
    // the value at the stale sentinel) and the two would diverge.
    LatencyHistogram h;
    h.record(1.0e9);
    EXPECT_EQ(h.count(), 1u);
    EXPECT_DOUBLE_EQ(h.minValue(), 1.0e9);
    EXPECT_DOUBLE_EQ(h.maxValue(), 1.0e9);
    EXPECT_DOUBLE_EQ(h.minValue(), h.maxValue());
    EXPECT_DOUBLE_EQ(h.mean(), 1.0e9);
    EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0e9);
}

TEST(LatencyHistogram, ZeroAndNegativeValues)
{
    LatencyHistogram h;
    h.record(0.0);
    h.record(-5.0);   // clamped to 0
    EXPECT_EQ(h.count(), 2u);
    EXPECT_DOUBLE_EQ(h.minValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.maxValue(), 0.0);
    EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

// ---------------------------------------------------------------------
// Registry and scopes.
// ---------------------------------------------------------------------

TEST(MetricRegistry, GetOrCreateReturnsStableAddresses)
{
    MetricRegistry reg;
    Counter &a = reg.counter("kona.fpga.remote_fetches");
    Counter &b = reg.counter("kona.fpga.remote_fetches");
    EXPECT_EQ(&a, &b);
    a.add(3);
    EXPECT_EQ(reg.counterValue("kona.fpga.remote_fetches"), 3u);
    EXPECT_EQ(reg.counterValue("never.registered"), 0u);
    EXPECT_EQ(reg.findCounter("never.registered"), nullptr);

    LatencyHistogram &h1 = reg.histogram("x.lat");
    LatencyHistogram &h2 = reg.histogram("x.lat");
    EXPECT_EQ(&h1, &h2);
}

TEST(MetricScope, PrefixesComposeAndDefaultScopeIsPrivate)
{
    auto reg = std::make_shared<MetricRegistry>();
    MetricScope root(reg, "kona");
    MetricScope fpga = root.sub("fpga");
    EXPECT_EQ(fpga.qualify("remote_fetches"),
              "kona.fpga.remote_fetches");
    fpga.counter("remote_fetches").add();
    EXPECT_EQ(reg->counterValue("kona.fpga.remote_fetches"), 1u);

    // Default-constructed scopes own a fresh private registry, so
    // standalone components need no wiring.
    MetricScope standalone;
    ASSERT_NE(standalone.registry(), nullptr);
    EXPECT_NE(standalone.registry().get(), reg.get());
    EXPECT_EQ(standalone.qualify("hits"), "hits");
}

TEST(Gauge, SetAddReset)
{
    Gauge g;
    g.set(2.5);
    g.add(1.5);
    EXPECT_DOUBLE_EQ(g.value(), 4.0);
    g.reset();
    EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(MetricRegistry, JsonExportIsValidAndComplete)
{
    MetricRegistry reg;
    reg.counter("a.count").add(7);
    reg.gauge("b.level").set(1.25);
    LatencyHistogram &h = reg.histogram("c.lat_ns");
    for (int i = 0; i < 10; ++i)
        h.record(64.0);
    reg.counter("needs\"escaping\\too").add(1);

    auto doc = parseJson(reg.toJson());
    ASSERT_TRUE(doc.has_value()) << reg.toJson();
    ASSERT_EQ(doc->kind, JsonValue::Object);
    const JsonValue *counters = doc->find("counters");
    const JsonValue *gauges = doc->find("gauges");
    const JsonValue *histograms = doc->find("histograms");
    ASSERT_NE(counters, nullptr);
    ASSERT_NE(gauges, nullptr);
    ASSERT_NE(histograms, nullptr);
    EXPECT_DOUBLE_EQ(counters->find("a.count")->number, 7.0);
    EXPECT_NE(counters->find("needs\"escaping\\too"), nullptr);
    EXPECT_DOUBLE_EQ(gauges->find("b.level")->number, 1.25);
    const JsonValue *lat = histograms->find("c.lat_ns");
    ASSERT_NE(lat, nullptr);
    EXPECT_DOUBLE_EQ(lat->find("count")->number, 10.0);
    EXPECT_DOUBLE_EQ(lat->find("mean")->number, 64.0);
    EXPECT_DOUBLE_EQ(lat->find("p50")->number, 64.0);
    EXPECT_DOUBLE_EQ(lat->find("max")->number, 64.0);
}

TEST(MetricRegistry, EmptyRegistryExportsValidJson)
{
    MetricRegistry reg;
    auto doc = parseJson(reg.toJson());
    ASSERT_TRUE(doc.has_value());
    EXPECT_NE(doc->find("counters"), nullptr);
    EXPECT_NE(doc->find("gauges"), nullptr);
    EXPECT_NE(doc->find("histograms"), nullptr);
}

// ---------------------------------------------------------------------
// TraceSession mechanics.
// ---------------------------------------------------------------------

TEST(TraceSession, DisabledSessionRecordsNothingThroughSpans)
{
    TraceSession session;
    SimClock clock;
    {
        Span s(&session, clock, "ignored", "test");
        s.arg("k", std::uint64_t{1});
        clock.advance(10);
    }
    {
        Span s(nullptr, clock, "ignored", "test");
        clock.advance(10);
    }
    EXPECT_EQ(session.size(), 0u);
}

TEST(TraceSession, SpanRecordsSimTimeAndArgs)
{
    TraceSession session;
    session.enable();
    SimClock clock;
    clock.advance(500);
    {
        Span s(&session, clock, "fetch", "miss");
        s.arg("addr", std::uint64_t{4096});
        s.arg("outcome", std::string("hit"));
        clock.advance(250);
    }
    ASSERT_EQ(session.size(), 1u);
    TraceEvent ev = session.snapshot()[0];
    EXPECT_STREQ(ev.name, "fetch");
    EXPECT_STREQ(ev.cat, "miss");
    EXPECT_EQ(ev.ts, 500u);
    EXPECT_EQ(ev.dur, 250u);
    ASSERT_EQ(ev.args.size(), 2u);
    EXPECT_EQ(ev.args[0].key, "addr");
    EXPECT_EQ(ev.args[0].value, "4096");
    EXPECT_FALSE(ev.args[0].isString);
    EXPECT_TRUE(ev.args[1].isString);
}

TEST(TraceSession, FlightRecorderDropsOldestWhenFull)
{
    TraceSession session(4);
    session.enable();
    for (std::uint64_t i = 0; i < 6; ++i) {
        TraceEvent ev;
        ev.name = "e";
        ev.cat = "t";
        ev.ts = i;
        session.record(std::move(ev));
    }
    EXPECT_EQ(session.size(), 4u);
    EXPECT_EQ(session.dropped(), 2u);
    auto events = session.snapshot();
    ASSERT_EQ(events.size(), 4u);
    // Oldest first, and the two oldest events (ts 0, 1) are gone.
    EXPECT_EQ(events.front().ts, 2u);
    EXPECT_EQ(events.back().ts, 5u);
}

TEST(TraceSession, CrashDumpFiresOnPanic)
{
    std::string path = ::testing::TempDir() + "kona_crash_dump.json";
    std::remove(path.c_str());
    {
        TraceSession session;
        session.enable();
        session.setCrashDumpPath(path);
        SimClock clock;
        {
            Span s(&session, clock, "doomed", "test");
            clock.advance(7);
        }
        EXPECT_THROW(panic("telemetry crash-dump test"), PanicError);
    }
    std::ifstream in(path);
    ASSERT_TRUE(in.good()) << "flight recorder was not dumped";
    std::stringstream buffer;
    buffer << in.rdbuf();
    auto doc = parseJson(buffer.str());
    ASSERT_TRUE(doc.has_value());
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    bool sawDoomed = false;
    for (const JsonValue &ev : events->array) {
        const JsonValue *name = ev.find("name");
        sawDoomed |= name != nullptr && name->str == "doomed";
    }
    EXPECT_TRUE(sawDoomed);
    std::remove(path.c_str());
}

TEST(TraceSession, CrashDumpAlsoFiresOnFatal)
{
    std::string path = ::testing::TempDir() + "kona_fatal_dump.json";
    std::remove(path.c_str());
    {
        TraceSession session;
        session.enable();
        session.setCrashDumpPath(path);
        SimClock clock;
        {
            Span s(&session, clock, "pre-fatal", "test");
            clock.advance(1);
        }
        EXPECT_THROW(fatal("telemetry fatal-dump test"), FatalError);
    }
    std::ifstream in(path);
    EXPECT_TRUE(in.good());
    std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Whole-stack telemetry: registry vs legacy stats structs, span trees.
// ---------------------------------------------------------------------

/** A small rack + Kona stack registering into a shared registry. */
struct TelemetryRig
{
    explicit TelemetryRig(KonaConfig cfg = smallConfig())
        : registry(std::make_shared<MetricRegistry>()),
          fabric(LatencyConfig{}, MetricScope(registry, "fabric")),
          controller(1 * MiB, MetricScope(registry, "rack"))
    {
        for (NodeId id = 1; id <= 3; ++id) {
            nodes.push_back(std::make_unique<MemoryNode>(
                fabric, id, 64 * MiB, 4 * MiB,
                MetricScope(registry,
                            "rack.node" + std::to_string(id))));
            controller.registerNode(*nodes.back());
        }
        runtime = std::make_unique<KonaRuntime>(
            fabric, controller, 0, cfg,
            MetricScope(registry, "kona"));
    }

    static KonaConfig
    smallConfig()
    {
        KonaConfig cfg;
        cfg.fpga.vfmemSize = 64 * MiB;
        cfg.fpga.fmemSize = 1 * MiB;
        cfg.hierarchy = HierarchyConfig::scaled();
        return cfg;
    }

    /** Touch enough pages to force remote fetches and evictions. */
    void
    churn()
    {
        Addr a = runtime->allocate(4 * MiB, pageSize);
        for (Addr off = 0; off < 4 * MiB; off += pageSize)
            runtime->store<std::uint64_t>(a + off, off);
        for (Addr off = 0; off < 4 * MiB; off += pageSize)
            (void)runtime->load<std::uint64_t>(a + off);
        runtime->writebackAll();
    }

    std::shared_ptr<MetricRegistry> registry;
    Fabric fabric;
    Controller controller;
    std::vector<std::unique_ptr<MemoryNode>> nodes;
    std::unique_ptr<KonaRuntime> runtime;
};

TEST(KonaTelemetry, RegistryAggregatesExactlyMatchRuntimeStats)
{
    TelemetryRig rig;
    rig.churn();

    RuntimeStats s = rig.runtime->stats();
    const MetricRegistry &reg = *rig.registry;
    EXPECT_GT(s.remoteFetches, 0u);
    EXPECT_GT(s.pagesEvicted, 0u);

    EXPECT_EQ(s.reads, reg.counterValue("kona.cn0.reads"));
    EXPECT_EQ(s.writes, reg.counterValue("kona.cn0.writes"));
    EXPECT_EQ(s.bytesRead, reg.counterValue("kona.cn0.bytes_read"));
    EXPECT_EQ(s.bytesWritten, reg.counterValue("kona.cn0.bytes_written"));
    EXPECT_EQ(s.remoteFetches,
              reg.counterValue("kona.cn0.fpga.remote_fetches"));
    EXPECT_EQ(s.pagesEvicted,
              reg.counterValue("kona.cn0.evict.pages_evicted"));
    EXPECT_EQ(s.silentEvictions,
              reg.counterValue("kona.cn0.evict.silent_evictions"));
    EXPECT_EQ(s.dirtyLinesWritten,
              reg.counterValue("kona.cn0.evict.dirty_lines_written"));
    EXPECT_EQ(s.evictionBytesOnWire,
              reg.counterValue("kona.cn0.evict.bytes_on_wire"));
    EXPECT_EQ(s.retries,
              reg.counterValue("kona.cn0.outage_retries") +
                  reg.counterValue("kona.cn0.evict.retry_backoffs"));
    EXPECT_EQ(s.retransmits,
              reg.counterValue("kona.cn0.evict.log_retransmits"));
    EXPECT_EQ(s.replicaPromotions,
              reg.counterValue("kona.cn0.fpga.replica_promotions") +
                  reg.counterValue("kona.cn0.rebuild_promotions"));

    // The same registry also carries the rack side of the run.
    EXPECT_GT(reg.counterValue("fabric.bytes_moved"), 0u);
    std::uint64_t linesReceived = 0;
    for (NodeId id = 1; id <= 3; ++id) {
        linesReceived += reg.counterValue(
            "rack.node" + std::to_string(id) + ".lines_received");
    }
    EXPECT_EQ(linesReceived, s.dirtyLinesWritten);
}

TEST(KonaTelemetry, StatsAndReliabilityShareOneSource)
{
    TelemetryRig rig([] {
        KonaConfig cfg = TelemetryRig::smallConfig();
        cfg.failurePolicy = FailurePolicy::WaitRetry;
        cfg.retry.initialBackoffNs = 50'000;
        return cfg;
    }());

    Addr a = rig.runtime->allocate(4 * pageSize, pageSize);
    rig.runtime->store<std::uint64_t>(a, 42);
    rig.runtime->writebackAll();

    // Outage: every node down until the third backoff, so the miss
    // path accumulates real retries.
    for (auto &node : rig.nodes)
        rig.fabric.setNodeDown(node->id(), true);
    rig.runtime->setOutageObserver([&rig](std::size_t attempt) {
        if (attempt >= 2) {
            for (auto &node : rig.nodes)
                rig.fabric.setNodeDown(node->id(), false);
        }
    });
    EXPECT_EQ(rig.runtime->load<std::uint64_t>(a), 42u);

    RuntimeStats s = rig.runtime->stats();
    ReliabilityStats r = rig.runtime->reliability();
    EXPECT_GT(s.retries, 0u);
    // The de-duplicated counters: both snapshots are views over the
    // same registry-backed sources and can never diverge.
    EXPECT_EQ(s.retries, r.retries);
    EXPECT_EQ(s.retransmits, r.retransmits);
    EXPECT_EQ(s.replicaPromotions, r.replicaPromotions);
    EXPECT_EQ(s.retries,
              rig.registry->counterValue("kona.cn0.outage_retries") +
                  rig.registry->counterValue(
                      "kona.cn0.evict.retry_backoffs"));
}

/** Find all events named @p name in @p events. */
std::vector<TraceEvent>
eventsNamed(const std::vector<TraceEvent> &events, const char *name)
{
    std::vector<TraceEvent> out;
    for (const TraceEvent &ev : events) {
        if (std::string_view(ev.name) == name)
            out.push_back(ev);
    }
    return out;
}

/** True when @p inner lies within @p outer's [ts, ts+dur] interval. */
bool
nestedIn(const TraceEvent &inner, const TraceEvent &outer)
{
    return inner.ts >= outer.ts &&
           inner.ts + inner.dur <= outer.ts + outer.dur;
}

TEST(KonaTelemetry, MissPathEmitsCompleteSpanTree)
{
    TelemetryRig rig;
    TraceSession *trace = rig.runtime->traceSession();
    ASSERT_NE(trace, nullptr);
    trace->enable();

    // One cold load: miss -> serve_line -> fetch_page -> rdma_read.
    Addr a = rig.runtime->allocate(pageSize, pageSize);
    (void)rig.runtime->load<std::uint64_t>(a);

    auto events = trace->snapshot();
    auto misses = eventsNamed(events, "miss");
    auto serves = eventsNamed(events, "serve_line");
    auto fetches = eventsNamed(events, "fetch_page");
    auto rdmaReads = eventsNamed(events, "rdma_read");
    ASSERT_EQ(misses.size(), 1u);
    ASSERT_GE(serves.size(), 1u);
    ASSERT_GE(fetches.size(), 1u);
    ASSERT_GE(rdmaReads.size(), 1u);

    const TraceEvent &miss = misses[0];
    EXPECT_EQ(miss.tid, traceAppThread);
    EXPECT_GT(miss.dur, 0u);
    EXPECT_TRUE(nestedIn(serves[0], miss));
    EXPECT_TRUE(nestedIn(fetches[0], serves[0]));
    EXPECT_TRUE(nestedIn(rdmaReads[0], fetches[0]));

    // Span args carry the access address and transfer size.
    bool sawAddr = false;
    for (const TraceArg &arg : miss.args)
        sawAddr |= arg.key == "addr";
    EXPECT_TRUE(sawAddr);
    bool sawBytes = false;
    for (const TraceArg &arg : rdmaReads[0].args)
        sawBytes |= arg.key == "bytes";
    EXPECT_TRUE(sawBytes);
}

TEST(KonaTelemetry, EvictionPathEmitsCompleteSpanTree)
{
    TelemetryRig rig;
    TraceSession *trace = rig.runtime->traceSession();
    ASSERT_NE(trace, nullptr);

    // Dirty a few pages first, then trace only the eviction batch.
    Addr a = rig.runtime->allocate(8 * pageSize, pageSize);
    for (int p = 0; p < 8; ++p)
        rig.runtime->store<std::uint64_t>(a + p * pageSize, p + 1);
    trace->enable();
    rig.runtime->writebackAll();

    auto events = trace->snapshot();
    auto batches = eventsNamed(events, "evict_batch");
    auto scans = eventsNamed(events, "bitmap_scan");
    auto packs = eventsNamed(events, "pack");
    auto wires = eventsNamed(events, "wire");
    auto unpacks = eventsNamed(events, "unpack");
    auto acks = eventsNamed(events, "ack");
    ASSERT_GE(batches.size(), 1u);
    ASSERT_GE(scans.size(), 1u);
    ASSERT_GE(packs.size(), 1u);
    ASSERT_GE(wires.size(), 1u);
    ASSERT_GE(unpacks.size(), 1u);
    ASSERT_GE(acks.size(), 1u);

    // Find the batch that shipped data (dirty_pages > 0) and check
    // each stage nests inside it.
    const TraceEvent *shipping = nullptr;
    for (const TraceEvent &batch : batches) {
        for (const TraceArg &arg : batch.args) {
            if (arg.key == "dirty_pages" && arg.value != "0")
                shipping = &batch;
        }
    }
    ASSERT_NE(shipping, nullptr);
    bool scanNested = false, wireNested = false, unpackNested = false;
    for (const TraceEvent &ev : scans)
        scanNested |= nestedIn(ev, *shipping);
    for (const TraceEvent &ev : wires)
        wireNested |= nestedIn(ev, *shipping);
    for (const TraceEvent &ev : unpacks)
        unpackNested |= nestedIn(ev, *shipping);
    EXPECT_TRUE(scanNested);
    EXPECT_TRUE(wireNested);
    EXPECT_TRUE(unpackNested);

    // The receiver's unpack renders on the memory node's lane.
    bool nodeLane = false;
    for (const TraceEvent &ev : unpacks)
        nodeLane |= ev.tid >= 100;
    EXPECT_TRUE(nodeLane);
}

TEST(KonaTelemetry, TraceJsonIsValidChromeTraceFormat)
{
    TelemetryRig rig;
    TraceSession *trace = rig.runtime->traceSession();
    trace->enable();
    rig.churn();

    auto doc = parseJson(trace->toJson());
    ASSERT_TRUE(doc.has_value()) << "trace JSON did not parse";
    const JsonValue *events = doc->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_EQ(events->kind, JsonValue::Array);
    ASSERT_GT(events->array.size(), 10u);

    std::size_t complete = 0;
    for (const JsonValue &ev : events->array) {
        const JsonValue *ph = ev.find("ph");
        ASSERT_NE(ph, nullptr);
        ASSERT_NE(ev.find("name"), nullptr);
        ASSERT_NE(ev.find("pid"), nullptr);
        ASSERT_NE(ev.find("tid"), nullptr);
        if (ph->str == "X") {
            ++complete;
            ASSERT_NE(ev.find("ts"), nullptr);
            ASSERT_NE(ev.find("dur"), nullptr);
            ASSERT_NE(ev.find("cat"), nullptr);
        } else {
            EXPECT_EQ(ph->str, "M");   // metadata only otherwise
        }
    }
    EXPECT_GT(complete, 0u);
    const JsonValue *other = doc->find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_NE(other->find("droppedEvents"), nullptr);
}

TEST(VmTelemetry, RegistryAggregatesExactlyMatchRuntimeStats)
{
    auto registry = std::make_shared<MetricRegistry>();
    Fabric fabric(LatencyConfig{}, MetricScope(registry, "fabric"));
    Controller controller(1 * MiB, MetricScope(registry, "rack"));
    std::vector<std::unique_ptr<MemoryNode>> nodes;
    for (NodeId id = 1; id <= 2; ++id) {
        nodes.push_back(std::make_unique<MemoryNode>(
            fabric, id, 64 * MiB, 4 * MiB,
            MetricScope(registry, "rack.node" + std::to_string(id))));
        controller.registerNode(*nodes.back());
    }
    VmConfig cfg;
    cfg.localCachePages = 64;
    cfg.hierarchy = HierarchyConfig::scaled();
    VmRuntime runtime(fabric, controller, 0, cfg,
                      MetricScope(registry, "vm"));

    Addr a = runtime.allocate(512 * pageSize, pageSize);
    for (int p = 0; p < 512; ++p)
        runtime.store<std::uint64_t>(a + p * pageSize, p);
    runtime.writebackAll();

    RuntimeStats s = runtime.stats();
    EXPECT_GT(s.majorFaults, 0u);
    EXPECT_GT(s.pagesEvicted, 0u);
    EXPECT_EQ(s.reads, registry->counterValue("vm.reads"));
    EXPECT_EQ(s.writes, registry->counterValue("vm.writes"));
    EXPECT_EQ(s.majorFaults,
              registry->counterValue("vm.major_faults"));
    EXPECT_EQ(s.minorFaults,
              registry->counterValue("vm.minor_faults"));
    EXPECT_EQ(s.tlbShootdowns,
              registry->counterValue("vm.tlb_shootdowns"));
    EXPECT_EQ(s.pagesEvicted,
              registry->counterValue("vm.pages_evicted"));
    EXPECT_EQ(s.evictionBytesOnWire,
              registry->counterValue("vm.bytes_on_wire"));
    EXPECT_EQ(s.retries, registry->counterValue("vm.fault_retries"));

    // Fault latencies feed the registry histogram.
    const LatencyHistogram *faultNs =
        registry->findHistogram("vm.major_fault_ns");
    ASSERT_NE(faultNs, nullptr);
    EXPECT_EQ(faultNs->count(), s.majorFaults);
    EXPECT_GT(faultNs->p50(), 0.0);
}

TEST(VmTelemetry, FaultPathEmitsSpans)
{
    VmConfig cfg;
    cfg.localCachePages = 64;
    cfg.hierarchy = HierarchyConfig::scaled();
    Fabric fabric;
    Controller controller(1 * MiB);
    MemoryNode node(fabric, 1, 64 * MiB);
    controller.registerNode(node);
    VmRuntime runtime(fabric, controller, 0, cfg);
    TraceSession *trace = runtime.traceSession();
    ASSERT_NE(trace, nullptr);
    trace->enable();

    Addr a = runtime.allocate(128 * pageSize, pageSize);
    for (int p = 0; p < 128; ++p)
        runtime.store<std::uint64_t>(a + p * pageSize, p);

    auto events = trace->snapshot();
    EXPECT_GE(eventsNamed(events, "major_fault").size(), 1u);
    EXPECT_GE(eventsNamed(events, "minor_fault").size(), 1u);
    EXPECT_GE(eventsNamed(events, "writeback_page").size(), 1u);
}

} // namespace
} // namespace kona
