/**
 * @file
 * Unit tests for src/prefetch (predictors, credit bucket, staging
 * queue) and the CoherentFpga prefetch engine built on them: credit
 * enforcement, useful/wasted attribution against a hand-computed
 * oracle, silent node-down handling, the deprecated-bool alias, and
 * runtime-level demand-fetch reduction.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/kona_runtime.h"
#include "fpga/coherent_fpga.h"
#include "prefetch/adaptive_prefetcher.h"
#include "prefetch/correlation_prefetcher.h"
#include "prefetch/prefetch_queue.h"
#include "prefetch/prefetcher.h"
#include "prefetch/stride_prefetcher.h"
#include "rack/controller.h"

namespace kona {
namespace {

// ---------------------------------------------------------------- spec

TEST(PrefetchSpec, OffAndAliasesReturnNull)
{
    EXPECT_EQ(makePrefetcher("off"), nullptr);
    EXPECT_EQ(makePrefetcher("none"), nullptr);
    EXPECT_EQ(makePrefetcher(""), nullptr);
}

TEST(PrefetchSpec, DefaultDepthsAndNames)
{
    EXPECT_EQ(makePrefetcher("next")->name(), "next:1");
    EXPECT_EQ(makePrefetcher("next:7")->name(), "next:7");
    EXPECT_EQ(makePrefetcher("stride")->name(), "stride:4");
    EXPECT_EQ(makePrefetcher("corr")->name(), "corr:2");
    EXPECT_EQ(makePrefetcher("correlation:3")->name(), "corr:3");
    EXPECT_EQ(makePrefetcher("adaptive")->name(), "adaptive:4");
}

TEST(PrefetchSpec, BadSpecsAreFatal)
{
    EXPECT_THROW(makePrefetcher("bogus"), FatalError);
    EXPECT_THROW(makePrefetcher("next:0"), FatalError);
    EXPECT_THROW(makePrefetcher("next:abc"), FatalError);
    EXPECT_THROW(makePrefetcher("off:2"), FatalError);
}

TEST(PrefetchSpec, KnownPolicyValidation)
{
    EXPECT_TRUE(knownPrefetchPolicy("off"));
    EXPECT_TRUE(knownPrefetchPolicy("stride:8"));
    EXPECT_TRUE(knownPrefetchPolicy("adaptive"));
    EXPECT_FALSE(knownPrefetchPolicy("bogus"));
    EXPECT_FALSE(knownPrefetchPolicy("next:0"));
    EXPECT_FALSE(knownPrefetchPolicy("next:x"));
    EXPECT_FALSE(prefetchPolicyNames().empty());
}

// ---------------------------------------------------------- predictors

TEST(NextNPrefetcher, ProposesTheNextNPages)
{
    auto pf = makePrefetcher("next:3");
    std::vector<Addr> out;
    pf->observe(10, /*demandMiss=*/true, out);
    ASSERT_EQ(out.size(), 3u);
    EXPECT_EQ(out[0], 11u);
    EXPECT_EQ(out[1], 12u);
    EXPECT_EQ(out[2], 13u);
}

TEST(StridePrefetcher, DetectsForwardStride)
{
    StridePrefetcher pf;
    std::vector<Addr> out;
    pf.observe(100, true, out);
    pf.observe(103, true, out);
    EXPECT_TRUE(out.empty());   // one delta is not a pattern
    pf.observe(106, true, out);
    ASSERT_EQ(out.size(), 4u);  // default degree
    EXPECT_EQ(out[0], 109u);
    EXPECT_EQ(out[3], 118u);
    ASSERT_TRUE(pf.strideOf(106).has_value());
    EXPECT_EQ(*pf.strideOf(106), 3);
}

TEST(StridePrefetcher, DetectsNegativeStride)
{
    StridePrefetcher pf;
    std::vector<Addr> out;
    pf.observe(100, true, out);
    pf.observe(97, true, out);
    pf.observe(94, true, out);
    ASSERT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 91u);
    EXPECT_EQ(out[3], 82u);
    EXPECT_EQ(*pf.strideOf(94), -3);
}

TEST(StridePrefetcher, NegativeStrideStopsAtPageZero)
{
    StridePrefetcher pf;
    std::vector<Addr> out;
    pf.observe(8, true, out);
    pf.observe(5, true, out);
    pf.observe(2, true, out);   // 2 - 3 would underflow
    EXPECT_TRUE(out.empty());
    EXPECT_EQ(*pf.strideOf(2), -3);
}

TEST(StridePrefetcher, IntraPageRepeatsDoNotBreakTheStride)
{
    StridePrefetcher pf;
    std::vector<Addr> out;
    pf.observe(10, true, out);
    pf.observe(13, true, out);
    pf.observe(13, false, out);   // per-line traffic inside the page
    pf.observe(13, false, out);
    pf.observe(16, true, out);
    EXPECT_EQ(out.size(), 4u);
    EXPECT_EQ(out[0], 19u);
}

TEST(StridePrefetcher, IrregularDeltasNeverConfirm)
{
    StridePrefetcher pf;
    std::vector<Addr> out;
    for (Addr vpn : {0, 1, 3, 6, 10, 15, 21}) {   // deltas 1,2,3,...
        pf.observe(vpn, true, out);
        EXPECT_TRUE(out.empty());
    }
    EXPECT_FALSE(pf.strideOf(21).has_value());
}

TEST(CorrelationPrefetcher, RepeatedLoopConfirmsAndChains)
{
    CorrelationPrefetcher pf;
    std::vector<Addr> out;
    const Addr loop[] = {10, 500, 77};
    // Lap 1 records, lap 2 confirms, lap 3 predicts.
    for (int lap = 0; lap < 2; ++lap) {
        for (Addr vpn : loop) {
            pf.observe(vpn, true, out);
            EXPECT_TRUE(out.empty());
        }
    }
    EXPECT_EQ(pf.transitionCount(10, 500), 2u);
    EXPECT_EQ(pf.transitionCount(500, 77), 2u);
    pf.observe(10, true, out);
    ASSERT_EQ(out.size(), 2u);   // default chain depth
    EXPECT_EQ(out[0], 500u);
    EXPECT_EQ(out[1], 77u);
}

TEST(CorrelationPrefetcher, UniqueStreamPredictsNothing)
{
    CorrelationPrefetcher pf;
    std::vector<Addr> out;
    Rng rng(3);
    Addr vpn = 0;
    for (int i = 0; i < 200; ++i) {
        vpn += 1 + rng.below(1000);   // strictly increasing: no repeats
        pf.observe(vpn, true, out);
        EXPECT_TRUE(out.empty());
    }
}

TEST(CorrelationPrefetcher, IntraPageRepeatsAreNotTransitions)
{
    CorrelationPrefetcher pf;
    std::vector<Addr> out;
    pf.observe(10, true, out);
    pf.observe(10, false, out);
    pf.observe(10, false, out);
    EXPECT_EQ(pf.transitionCount(10, 10), 0u);
}

TEST(AdaptivePrefetcher, ThrottlesToZeroOnUselessPrefetches)
{
    AdaptivePrefetcher pf;
    std::vector<Addr> out;
    // A perfectly regular stream the stride detector loves — but every
    // issued prefetch goes unused, so accuracy feedback must win.
    Addr vpn = 0;
    for (int i = 0; i < 400; ++i) {
        out.clear();
        pf.observe(vpn, true, out);
        vpn += 2;
        if (!out.empty())
            pf.onPrefetchIssued(out.size());   // ... and never useful
    }
    EXPECT_EQ(pf.currentDegree(), 0u);
    EXPECT_LT(pf.accuracy(), 0.10);

    // While throttled, only the occasional probe escapes.
    int proposals = 0;
    for (int i = 0; i < 96; ++i) {
        out.clear();
        pf.observe(vpn, true, out);
        vpn += 2;
        if (!out.empty()) {
            ++proposals;
            pf.onPrefetchIssued(out.size());
        }
    }
    EXPECT_LE(proposals, 3);   // probePeriod = 32
}

TEST(AdaptivePrefetcher, StaysAtFullDegreeWhenAccurate)
{
    AdaptivePrefetcher pf;
    AdaptiveConfig cfg;   // defaults: what pf runs with
    std::vector<Addr> out;
    Addr vpn = 0;
    for (int i = 0; i < 400; ++i) {
        out.clear();
        pf.observe(vpn, true, out);
        vpn += 2;
        if (!out.empty()) {
            pf.onPrefetchIssued(out.size());
            for (Addr c : out)
                pf.onPrefetchUseful(c);
        }
    }
    EXPECT_EQ(pf.currentDegree(), cfg.maxDegree);
    EXPECT_GT(pf.accuracy(), 0.9);
    EXPECT_GT(pf.issuedTotal(), 100u);
    EXPECT_EQ(pf.usefulTotal(), pf.issuedTotal());
}

// ------------------------------------------------------- credits/queue

TEST(CreditBucket, StartsFullAndRefillsWithSimTime)
{
    CreditBucket bucket(100.0, 4);
    EXPECT_EQ(bucket.available(), 4u);
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(bucket.tryConsume());
    EXPECT_FALSE(bucket.tryConsume());

    bucket.advanceTo(250);   // 2.5 credits earned
    EXPECT_EQ(bucket.available(), 2u);
    bucket.advanceTo(240);   // time regression: ignored, not minted
    EXPECT_EQ(bucket.available(), 2u);
    bucket.advanceTo(350);   // +100ns plus the banked 50ns remainder
    EXPECT_EQ(bucket.available(), 3u);
    bucket.advanceTo(1'000'000);
    EXPECT_EQ(bucket.available(), 4u);   // capped at burst
}

TEST(PrefetchQueue, DedupCapacityAndClear)
{
    PrefetchQueue q(2);
    EXPECT_TRUE(q.push(1));
    EXPECT_FALSE(q.push(1));   // duplicate
    EXPECT_TRUE(q.contains(1));
    EXPECT_TRUE(q.push(2));
    EXPECT_FALSE(q.push(3));   // full
    EXPECT_EQ(q.size(), 2u);
    EXPECT_EQ(q.front(), 1u);
    q.pop();
    EXPECT_FALSE(q.contains(1));
    EXPECT_EQ(q.front(), 2u);
    EXPECT_EQ(q.clear(), 1u);
    EXPECT_TRUE(q.empty());
}

// ------------------------------------------------------- FPGA engine

/** One-node rack with four slabs mapped at the base of VFMem. */
class PrefetchEngineFixture : public ::testing::Test
{
  protected:
    PrefetchEngineFixture() : controller(1 * MiB)
    {
        node = std::make_unique<MemoryNode>(fabric, 7, 32 * MiB);
        controller.registerNode(*node);
        baseConfig.vfmemBase = 0x400000000000ULL;
        baseConfig.vfmemSize = 8 * MiB;
        baseConfig.fmemSize = 1 * MiB;
        base = baseConfig.vfmemBase;
    }

    /** An FPGA with @p cfg and the four slabs mapped. */
    std::unique_ptr<CoherentFpga>
    makeFpga(const FpgaConfig &cfg)
    {
        auto fpga = std::make_unique<CoherentFpga>(fabric, 0, cfg);
        for (int i = 0; i < 4; ++i) {
            SlabGrant g =
                *controller.allocateSlab(PlacementRequest{.required = true});
            fpga->translation().addSlab(base + i * g.size, g);
        }
        return fpga;
    }

    Fabric fabric;
    Controller controller;
    std::unique_ptr<MemoryNode> node;
    FpgaConfig baseConfig;
    Addr base = 0;
};

TEST_F(PrefetchEngineFixture, CreditBudgetBoundsIssues)
{
    FpgaConfig cfg = baseConfig;
    cfg.prefetchPolicy = "next:8";
    cfg.prefetchCreditBurst = 2;
    cfg.prefetchCreditRefillNs = 1e9;   // no refill within this test
    auto fpga = makeFpga(cfg);

    SimClock clock;
    fpga->serveLine(base, AccessType::Read, clock);
    PrefetchStats s = fpga->prefetchStats();
    EXPECT_EQ(s.predicted, 8u);
    EXPECT_EQ(s.issued, 2u);   // burst spent, leftovers stay staged
    EXPECT_EQ(s.droppedNoCredit, 0u);

    // The next access drops what the budget could not cover in time.
    fpga->serveLine(base + cacheLineSize, AccessType::Read, clock);
    s = fpga->prefetchStats();
    EXPECT_EQ(s.issued, 2u);
    EXPECT_EQ(s.droppedNoCredit, 6u);
}

TEST_F(PrefetchEngineFixture, UsefulAndWastedMatchHandOracle)
{
    FpgaConfig cfg = baseConfig;
    cfg.prefetchPolicy = "next:1";
    auto fpga = makeFpga(cfg);
    SimClock clock;

    // Touch pages 0, 2, 4: each demand fetch prefetches page+1, and
    // the stream never comes back for them -> oracle: 3 issued, all
    // wasted once dropped, none useful.
    for (Addr p : {0, 2, 4})
        fpga->serveLine(base + p * pageSize, AccessType::Read, clock);
    PrefetchStats s = fpga->prefetchStats();
    EXPECT_EQ(s.issued, 3u);
    EXPECT_EQ(s.useful, 0u);

    Addr vpn0 = pageNumber(base);
    for (Addr p : {1, 3, 5}) {
        EXPECT_TRUE(fpga->pageResident(vpn0 + p));
        fpga->dropPage(vpn0 + p);
    }
    s = fpga->prefetchStats();
    EXPECT_EQ(s.wasted, 3u);
    EXPECT_EQ(s.useful, 0u);
}

TEST_F(PrefetchEngineFixture, SequentialStreamIsAllUseful)
{
    FpgaConfig cfg = baseConfig;
    cfg.prefetchPolicy = "next:1";
    auto fpga = makeFpga(cfg);
    SimClock clock;

    // Pages 0..3 in order: 0 misses, 1..3 are prefetched just ahead,
    // and touching 3 speculates one page past the stream's end ->
    // oracle: 4 issued, 3 useful, 1 demand fetch, 0 wasted (page 4 is
    // still resident, not evicted).
    for (Addr p = 0; p < 4; ++p)
        fpga->serveLine(base + p * pageSize, AccessType::Read, clock);
    PrefetchStats s = fpga->prefetchStats();
    EXPECT_EQ(s.issued, 4u);
    EXPECT_EQ(s.useful, 3u);
    EXPECT_EQ(s.wasted, 0u);
    EXPECT_EQ(fpga->demandFetches(), 1u);
    EXPECT_EQ(fpga->remoteFetches(), 5u);   // demand + prefetches
    EXPECT_DOUBLE_EQ(s.accuracy(), 0.75);
}

TEST_F(PrefetchEngineFixture, PrefetchFallsBackToReplicaOnDownNode)
{
    // Replica on a second node so the speculation has somewhere to go.
    MemoryNode node2(fabric, 8, 32 * MiB);
    controller.registerNode(node2);

    FpgaConfig cfg = baseConfig;
    cfg.prefetchPolicy = "next:1";
    CoherentFpga fpga(fabric, 3, cfg);
    SlabGrant a = *controller.allocateSlab(PlacementRequest{.required = true});
    SlabGrant b = *controller.allocateSlab(PlacementRequest{.required = true});
    ASSERT_NE(a.where.node, b.where.node);
    SlabGrant primary = a.where.node == 7 ? a : b;
    SlabGrant replica = a.where.node == 7 ? b : a;
    fpga.translation().addSlab(base, primary, {replica});

    SimClock clock;
    fpga.serveLine(base, AccessType::Read, clock);   // fetch 0, pf 1
    ASSERT_TRUE(fpga.pageResident(pageNumber(base) + 1));

    int healthReports = 0;
    int failureReports = 0;
    fpga.setHealthReporter([&](NodeId, bool ok, Tick) {
        ++healthReports;
        failureReports += ok ? 0 : 1;
    });
    fabric.setNodeDown(7, true);

    // FMem hit on the prefetched page; the engine now wants page 2,
    // whose primary is down. The speculation reports the dead primary
    // to the health scorer and serves the page from the replica — no
    // promotion, no retry loop, no warning.
    ServeStatus s =
        fpga.serveLine(base + pageSize, AccessType::Read, clock);
    EXPECT_EQ(s, ServeStatus::FMemHit);
    EXPECT_TRUE(fpga.pageResident(pageNumber(base) + 2));
    EXPECT_EQ(fpga.prefetchReplicaFallbacks(), 1u);
    EXPECT_EQ(fpga.prefetchStats().droppedNodeDown, 0u);
    EXPECT_EQ(fpga.translation().translate(base).node, 7u);
    EXPECT_EQ(fpga.replicaPromotions(), 0u);
    EXPECT_EQ(failureReports, 1);
    EXPECT_GE(healthReports, 2);   // the failure + the replica success

    // With every copy unreachable the speculation gives up silently.
    fabric.setNodeDown(8, true);
    fpga.serveLine(base + 2 * pageSize, AccessType::Read, clock);
    EXPECT_FALSE(fpga.pageResident(pageNumber(base) + 3));
    EXPECT_EQ(fpga.prefetchStats().droppedNodeDown, 1u);
    fabric.setNodeDown(7, false);
    fabric.setNodeDown(8, false);
}

TEST_F(PrefetchEngineFixture, NextOnePolicyString)
{
    FpgaConfig cfg = baseConfig;
    cfg.prefetchPolicy = "next:1";
    auto fpga = makeFpga(cfg);
    ASSERT_NE(fpga->prefetcher(), nullptr);
    EXPECT_EQ(fpga->prefetcher()->name(), "next:1");

    SimClock clock;
    fpga->serveLine(base, AccessType::Read, clock);
    EXPECT_TRUE(fpga->pageResident(pageNumber(base) + 1));
    EXPECT_EQ(fpga->prefetches(), 1u);
}

// --------------------------------------------------------- integration

struct SweepResult
{
    std::uint64_t demand = 0;
    PrefetchStats stats;
};

/**
 * Run @p stream (page indices into an 8MiB region) on a KonaRuntime
 * whose FMem holds a quarter of the footprint.
 */
SweepResult
runStream(const std::string &policy,
          const std::vector<std::size_t> &stream)
{
    Fabric fabric;
    Controller controller(1 * MiB);
    MemoryNode node(fabric, 1, 128 * MiB);
    controller.registerNode(node);
    KonaConfig cfg;
    cfg.fpga.vfmemSize = 32 * MiB;
    cfg.fpga.fmemSize = 2 * MiB;
    cfg.fpga.prefetchPolicy = policy;
    cfg.hierarchy = HierarchyConfig::scaled();
    KonaRuntime runtime(fabric, controller, 0, cfg);

    constexpr std::size_t span = 8 * MiB;
    Addr region = runtime.allocate(span, pageSize);
    for (std::size_t page : stream)
        (void)runtime.load<std::uint64_t>(region + page * pageSize);

    SweepResult r;
    r.demand = runtime.fpga().demandFetches();
    r.stats = runtime.fpga().prefetchStats();
    return r;
}

TEST(PrefetchIntegration, StrideCutsSequentialDemandFetches)
{
    constexpr std::size_t numPages = 8 * MiB / pageSize;
    std::vector<std::size_t> stream;
    for (std::size_t i = 0; i < numPages; ++i)
        stream.push_back(i);

    SweepResult off = runStream("off", stream);
    SweepResult stride = runStream("stride:4", stream);
    EXPECT_EQ(off.demand, numPages);
    // The acceptance bar is a 30% reduction; the detector should do
    // far better on a pure sequential stream.
    EXPECT_LE(stride.demand, off.demand * 7 / 10);
    EXPECT_GT(stride.stats.accuracy(), 0.9);
}

TEST(PrefetchIntegration, AdaptiveThrottlesOnRandomStream)
{
    constexpr std::size_t numPages = 8 * MiB / pageSize;
    std::vector<std::size_t> stream;
    Rng rng(17);
    for (std::size_t i = 0; i < numPages; ++i)
        stream.push_back(rng.below(numPages));

    SweepResult next = runStream("next:1", stream);
    SweepResult adaptive = runStream("adaptive:4", stream);
    ASSERT_GT(next.stats.issued, 100u);
    // Feedback-directed throttling: a uniform-random stream earns no
    // bandwidth (acceptance bar: < 5% of the static policy's issues).
    EXPECT_LT(adaptive.stats.issued, next.stats.issued / 20);
}

} // namespace
} // namespace kona
