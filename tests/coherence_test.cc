/**
 * @file
 * Inter-node coherence tests: DirectoryService MSI state machine,
 * CoherenceAgent integration over MultiRack, the litmus differential
 * suite vs the sequentially-consistent oracle (fault-free and under
 * gray faults), determinism across seeds, metric-namespace isolation
 * between runtimes, and the no-sharing fast path.
 */

#include <gtest/gtest.h>

#include <map>

#include "coherence/agent.h"
#include "coherence/directory.h"
#include "coherence/litmus.h"
#include "net/fault_injector.h"
#include "rack/multi_rack.h"

namespace kona {
namespace {

// ---------------------------------------------------------------------
// DirectoryService unit tests (scripted peers, no runtimes).
// ---------------------------------------------------------------------

/** A peer that releases immediately when invalidated. */
struct ScriptedPeer : CoherencePeer
{
    DirectoryService *dir = nullptr;
    NodeId self = 0;
    std::uint64_t invalidations = 0;
    std::uint64_t linesToReport = 0;
    std::vector<StaleHomeReport> staleViewAtRelease;

    InvalidateResult
    onInvalidate(Addr vpn, SimClock &) override
    {
        ++invalidations;
        dir->release(self, vpn, ~std::uint64_t(0), staleViewAtRelease);
        return {true, linesToReport};
    }
};

struct DirectoryFixture : ::testing::Test
{
    DirectoryFixture()
        : fabric(), controller(1 * MiB),
          node(fabric, 1, 32 * MiB), dir(fabric, controller)
    {
        controller.registerNode(node);
        for (std::size_t i = 0; i < 3; ++i) {
            peers[i].dir = &dir;
            peers[i].self = 101 + static_cast<NodeId>(i);
            dir.attachPeer(peers[i].self, peers[i]);
        }
    }

    Fabric fabric;
    Controller controller;
    MemoryNode node;
    DirectoryService dir;
    ScriptedPeer peers[3];
    SimClock clock;
};

TEST_F(DirectoryFixture, MsiTransitions)
{
    const Addr vpn = 42;
    EXPECT_EQ(dir.stateOf(vpn), PageCoherenceState::Uncached);

    // Two readers share the page with distinct line vectors.
    EXPECT_TRUE(dir.acquireShared(101, vpn, 0x1, clock).granted);
    EXPECT_TRUE(dir.acquireShared(102, vpn, 0x6, clock).granted);
    EXPECT_EQ(dir.stateOf(vpn), PageCoherenceState::Shared);
    EXPECT_EQ(dir.sharerCount(vpn), 2u);
    EXPECT_EQ(dir.sharerLineMask(vpn, 101), 0x1u);
    EXPECT_EQ(dir.sharerLineMask(vpn, 102), 0x6u);
    EXPECT_EQ(dir.invalidationsSent(), 0u);

    // A third node takes exclusive ownership: both sharers are
    // invalidated and the entry collapses to one owner.
    EXPECT_TRUE(dir.acquireExclusive(103, vpn, 0x8, clock).granted);
    EXPECT_EQ(dir.stateOf(vpn), PageCoherenceState::Modified);
    EXPECT_EQ(dir.ownerOf(vpn), 103u);
    EXPECT_EQ(dir.sharerCount(vpn), 1u);
    EXPECT_EQ(peers[0].invalidations + peers[1].invalidations, 2u);
    EXPECT_EQ(dir.invalidationsSent(), 2u);

    // A reader pulls the owner back to Shared (ownership transfer).
    EXPECT_TRUE(dir.acquireShared(101, vpn, 0x1, clock).granted);
    EXPECT_EQ(dir.stateOf(vpn), PageCoherenceState::Shared);
    EXPECT_EQ(peers[2].invalidations, 1u);
    EXPECT_GE(dir.ownershipTransfers(), 1u);
    EXPECT_GE(dir.ownershipTransferNs().count(), 1u);

    // Upgrade: the remaining sharer goes exclusive without
    // invalidating itself.
    std::uint64_t invalsBefore = dir.invalidationsSent();
    EXPECT_TRUE(dir.acquireExclusive(101, vpn, 0x2, clock).granted);
    EXPECT_EQ(dir.ownerOf(vpn), 101u);
    EXPECT_EQ(dir.invalidationsSent(), invalsBefore);
    EXPECT_GE(dir.upgrades(), 1u);
    // The owner's line vector accumulated across acquires.
    EXPECT_EQ(dir.sharerLineMask(vpn, 101), 0x3u);

    // Final release empties and compacts the entry.
    dir.release(101, vpn, 0x3, {});
    EXPECT_EQ(dir.stateOf(vpn), PageCoherenceState::Uncached);
    EXPECT_EQ(dir.pagesTracked(), 0u);
}

TEST_F(DirectoryFixture, OwnerKeepsModifiedOnSelfReacquire)
{
    const Addr vpn = 7;
    EXPECT_TRUE(dir.acquireExclusive(101, vpn, 0x1, clock).granted);
    // The owner reading its own page must not demote it.
    EXPECT_TRUE(dir.acquireShared(101, vpn, 0x2, clock).granted);
    EXPECT_EQ(dir.stateOf(vpn), PageCoherenceState::Modified);
    EXPECT_EQ(dir.ownerOf(vpn), 101u);
    EXPECT_EQ(peers[0].invalidations, 0u);
}

TEST_F(DirectoryFixture, StaleHomeFederationReplacesOnRelease)
{
    const Addr vpn = 9;
    // Holder 101 drops the page having failed to freshen home 3.
    peers[0].staleViewAtRelease = {{3, 0xf0}};
    EXPECT_TRUE(dir.acquireExclusive(101, vpn, 0x1, clock).granted);
    EXPECT_TRUE(dir.acquireExclusive(102, vpn, 0x1, clock).granted);

    // 102's grant carried the stale-home seed from 101's release.
    // (Check via a fresh shared acquire whose result we can observe.)
    AcquireResult r = dir.acquireShared(103, vpn, 0x1, clock);
    ASSERT_TRUE(r.granted);
    // 102 released with an empty stale view during 103's acquire
    // (ScriptedPeer default), which REPLACED the record: home 3 was
    // freshened by 102's (scripted) full writeback.
    EXPECT_TRUE(r.staleHomes.empty());
    EXPECT_GE(dir.staleSeedGrants(), 1u);
}

TEST_F(DirectoryFixture, SharedRegionRegistryIsIdempotent)
{
    const auto &a = dir.sharedRegion("litmus", 3 * MiB, 0);
    const auto &b = dir.sharedRegion("litmus", 3 * MiB, 0);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(a.slabs.size(), 3u);
    EXPECT_EQ(a.bytes, 3 * MiB);
    for (const MappedSlab &slab : a.slabs)
        EXPECT_TRUE(slab.shared);
    EXPECT_EQ(dir.sharedRegionCount(), 1u);
}

TEST_F(DirectoryFixture, ControlMessagesRideTheFaultInjector)
{
    FaultInjector fi(0x5eedULL);
    fabric.setFaultInjector(&fi);
    // Drop every fourth-ish message into peer 101's mailbox: the
    // directory's Inval-opcode sends must retry through it.
    fi.profile(101).dropProbability = 0.5;

    const Addr vpn = 11;
    EXPECT_TRUE(dir.acquireShared(101, vpn, 0x1, clock).granted);
    for (int i = 0; i < 16; ++i) {
        EXPECT_TRUE(dir.acquireExclusive(102, vpn, 0x1, clock).granted);
        EXPECT_TRUE(dir.acquireShared(101, vpn, 0x1, clock).granted);
    }
    EXPECT_GT(dir.controlRetries(), 0u);
    EXPECT_GT(dir.invalidationsSent(), 0u);
    fabric.setFaultInjector(nullptr);
}

// ---------------------------------------------------------------------
// MultiRack integration: real runtimes, real eviction pipeline.
// ---------------------------------------------------------------------

MultiRackConfig
smallRack(std::size_t computeNodes)
{
    MultiRackConfig cfg;
    cfg.computeNodes = computeNodes;
    cfg.memoryNodes = 3;
    cfg.memoryBytes = 64 * MiB;
    cfg.slabSize = 1 * MiB;
    cfg.runtime.fpga.vfmemSize = 64 * MiB;
    cfg.runtime.fpga.fmemSize = 8 * MiB;
    return cfg;
}

TEST(MultiRackCoherence, PingPongWritesNeverServeStale)
{
    MultiRack rack(smallRack(2));
    Addr base = rack.mapShared("pingpong", 64 * KiB);

    // Alternating writers on one line: every read must observe the
    // other node's latest store, which requires invalidation plus
    // dirty-line writeback through the eviction pipeline each swing.
    for (std::uint64_t i = 1; i <= 50; ++i) {
        KonaRuntime &writer = rack.runtime(i % 2);
        KonaRuntime &reader = rack.runtime((i + 1) % 2);
        writer.write(base, &i, sizeof i);
        std::uint64_t got = 0;
        reader.read(base, &got, sizeof got);
        ASSERT_EQ(got, i) << "stale read at iteration " << i;
    }

    DirectoryService &dir = rack.directory();
    EXPECT_GT(dir.invalidationsSent(), 0u);
    EXPECT_GT(dir.forcedWritebacks(), 0u);
    EXPECT_GT(dir.linesWrittenBack(), 0u);
    EXPECT_GT(dir.ownershipTransfers(), 0u);
    EXPECT_EQ(dir.invalidationFailures(), 0u);
    EXPECT_GT(rack.runtime(0).coherenceAgent()->invalidationsReceived(),
              0u);
}

TEST(MultiRackCoherence, RuntimeMetricScopesDoNotCollide)
{
    MultiRack rack(smallRack(2));
    Addr base = rack.mapShared("metrics", 4 * KiB);
    std::uint64_t v = 1;
    rack.runtime(0).write(base, &v, sizeof v);
    rack.runtime(1).read(base, &v, sizeof v);

    // Both runtimes share one registry; the per-runtime cn<id> prefix
    // keeps their counters distinct.
    const MetricRegistry &reg = *rack.metrics();
    EXPECT_EQ(reg.counterValue("kona.cn101.writes"), 1u);
    EXPECT_EQ(reg.counterValue("kona.cn101.reads"), 0u);
    EXPECT_EQ(reg.counterValue("kona.cn102.reads"), 1u);
    EXPECT_EQ(reg.counterValue("kona.cn102.writes"), 0u);
    EXPECT_EQ(reg.counterValue("kona.reads"), 0u);  // no unprefixed leak
    EXPECT_GT(reg.counterValue("kona.cn101.coherence.acquires"), 0u);
}

TEST(MultiRackCoherence, PrefetcherIsGovernedOffSharedPages)
{
    MultiRackConfig cfg = smallRack(2);
    cfg.runtime.fpga.prefetchPolicy = "next:1";
    MultiRack rack(cfg);
    Addr base = rack.mapShared("governed", 64 * KiB);

    // A sequential sweep tempts the next-page prefetcher into the
    // governed region; the governor must veto those candidates (a
    // speculative fetch without directory rights could resurrect a
    // stale copy).
    std::uint64_t v = 7;
    for (Addr off = 0; off < 16 * pageSize; off += pageSize)
        rack.runtime(0).write(base + off, &v, sizeof v);
    EXPECT_GT(rack.runtime(0).fpga().prefetchStats().droppedGoverned,
              0u);
}

TEST(MultiRackCoherence, UnsharedWorkloadMatchesDetachedRuntimeExactly)
{
    // Same private workload on two identical racks, one runtime
    // attached to a directory and one not: the coherence hook must
    // cost zero simulated time when no page is governed.
    auto workload = [](KonaRuntime &rt) {
        Addr a = rt.allocate(2 * MiB, pageSize);
        std::uint64_t v = 0;
        for (Addr off = 0; off < 2 * MiB; off += 256) {
            v = off;
            rt.write(a + off, &v, sizeof v);
        }
        std::uint64_t sum = 0;
        for (Addr off = 0; off < 2 * MiB; off += 256) {
            rt.read(a + off, &v, sizeof v);
            sum += v;
        }
        return sum;
    };

    MultiRack attached(smallRack(1));
    std::uint64_t sumAttached = workload(attached.runtime(0));

    MultiRackConfig cfg = smallRack(1);
    Fabric fabric;
    Controller controller(cfg.slabSize);
    MemoryNode n1(fabric, 1, cfg.memoryBytes);
    MemoryNode n2(fabric, 2, cfg.memoryBytes);
    MemoryNode n3(fabric, 3, cfg.memoryBytes);
    controller.registerNode(n1);
    controller.registerNode(n2);
    controller.registerNode(n3);
    KonaRuntime detached(fabric, controller,
                         MultiRack::firstComputeNode, cfg.runtime);
    std::uint64_t sumDetached = workload(detached);

    EXPECT_EQ(sumAttached, sumDetached);
    EXPECT_EQ(attached.runtime(0).appTime(), detached.appTime());
    EXPECT_EQ(attached.runtime(0).coherenceAgent()->acquires(), 0u);
    EXPECT_EQ(attached.directory().sharedAcquires() +
                  attached.directory().exclusiveAcquires(),
              0u);
}

// ---------------------------------------------------------------------
// Litmus differential suite.
// ---------------------------------------------------------------------

constexpr std::uint64_t kSeeds[] = {11, 22, 33, 44, 55};

/** Run every scenario on a fresh 4-node rack; return name -> hash. */
std::map<std::string, std::uint64_t>
runSuite(const MultiRackConfig &cfg, std::uint64_t seed,
         const char *label)
{
    MultiRack rack(cfg);
    Addr base = rack.mapShared("litmus", 64 * KiB);
    std::map<std::string, std::uint64_t> hashes;
    for (const LitmusScenario &scenario : litmusScenarios()) {
        LitmusOutcome out = runLitmus(scenario, rack, base, seed);
        EXPECT_TRUE(out.match)
            << label << " seed " << seed << ": " << out.divergence;
        EXPECT_GT(out.loadsChecked, 0u);
        hashes[scenario.name] = out.valueHash;
    }
    return hashes;
}

TEST(Litmus, CatalogueShape)
{
    const auto &all = litmusScenarios();
    EXPECT_GE(all.size(), 22u);
    std::size_t multiThread = 0;
    for (const LitmusScenario &s : all) {
        EXPECT_GE(s.threads(), 2u) << s.name;
        EXPECT_LE(s.threads(), 4u) << s.name;
        if (s.threads() > 2)
            ++multiThread;
    }
    EXPECT_GE(multiThread, 4u);  // 3- and 4-thread shapes present
}

TEST(Litmus, AllScenariosMatchOracleAcrossSeeds)
{
    for (std::uint64_t seed : kSeeds)
        runSuite(smallRack(4), seed, "fault-free");
}

TEST(Litmus, OutcomesAreBitIdenticalAcrossReruns)
{
    for (std::uint64_t seed : kSeeds) {
        auto first = runSuite(smallRack(4), seed, "determinism/a");
        auto second = runSuite(smallRack(4), seed, "determinism/b");
        EXPECT_EQ(first, second) << "seed " << seed;
    }
}

TEST(Litmus, MatchesOracleUnderGrayFaults)
{
    // PR 6 gray modes on coherence + data traffic at once:
    //  - memory node 1 is slow (degrade delay on every op);
    //  - memory node 2 is partially partitioned from compute node 101
    //    (one-directional timeouts), with replication so fetches and
    //    writebacks must fail over / go through stale-home marking;
    //  - compute node 102's mailbox drops a quarter of the directory's
    //    invalidation messages (retries through the Inval opcode).
    for (std::uint64_t seed : {kSeeds[0], kSeeds[1], kSeeds[2]}) {
        MultiRackConfig cfg = smallRack(4);
        cfg.runtime.replicationFactor = 1;
        cfg.runtime.failurePolicy = FailurePolicy::WaitRetry;
        MultiRack rack(cfg);
        // Gray means gray: the failure detector must not promote
        // these nodes to fail-stop and trigger rebuilds mid-litmus.
        rack.controller().setFailureThreshold(1'000'000);
        rack.faults().profile(1).degradeDelayNs = 30'000;
        rack.faults().profile(2).blockedSources.push_back(
            MultiRack::firstComputeNode);
        rack.faults().profile(MultiRack::firstComputeNode + 1)
            .dropProbability = 0.25;

        Addr base = rack.mapShared("litmus", 64 * KiB);
        bool sawFault = false;
        for (const LitmusScenario &scenario : litmusScenarios()) {
            LitmusOutcome out = runLitmus(scenario, rack, base, seed);
            ASSERT_TRUE(out.match)
                << "gray seed " << seed << ": " << out.divergence;
        }
        const MetricRegistry &reg = *rack.metrics();
        sawFault = reg.counterValue("faults.degrades_injected") > 0 ||
                   reg.counterValue("faults.timeouts_injected") > 0 ||
                   reg.counterValue("faults.drops_injected") > 0;
        EXPECT_TRUE(sawFault) << "fault profiles never fired";
        // The protocol really was exercised under fire.
        EXPECT_GT(rack.directory().invalidationsSent(), 0u);
        EXPECT_GT(rack.directory().controlRetries() +
                      rack.directory().invalidationFailures(),
                  0u);
    }
}

} // namespace
} // namespace kona
