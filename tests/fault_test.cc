/**
 * @file
 * Fault-tolerance tests: the deterministic fault injector, the shared
 * retry policy, CL-log CRC verification and the NAK/retransmit
 * protocol, failure detection and self-healing rebuilds, and the
 * scripted end-to-end scenario — every Table 2 workload surviving
 * drops, latency spikes, payload corruption and one permanent node
 * failure with a byte-exact final image.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <limits>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "core/kona_runtime.h"
#include "net/fault_injector.h"
#include "net/retry_policy.h"
#include "workloads/registry.h"

namespace kona {
namespace {

// ---------------------------------------------------------------------
// Satellite regressions: region bounds, deregistration, log size cap.
// ---------------------------------------------------------------------

TEST(MemoryRegionCovers, RejectsWrappingRanges)
{
    MemoryRegion mr;
    mr.base = 0;
    mr.length = 0x1000;
    EXPECT_TRUE(mr.covers(0, 0x1000));
    EXPECT_TRUE(mr.covers(0x10, 0xff0));
    // addr + size wraps to a tiny value; the additive check would have
    // falsely accepted this.
    EXPECT_FALSE(mr.covers(0x10, SIZE_MAX - 7));
    EXPECT_FALSE(mr.covers(0x10, 0x1000));
}

TEST(MemoryRegionCovers, RegionAtTopOfAddressSpace)
{
    MemoryRegion mr;
    mr.base = ~Addr(0) - 0xfff;   // last 4KB of the address space
    mr.length = 0x1000;
    EXPECT_TRUE(mr.covers(mr.base, 0x1000));
    EXPECT_TRUE(mr.covers(mr.base + 0xfff, 1));
    EXPECT_FALSE(mr.covers(mr.base + 0x800, 0x1000));
    EXPECT_FALSE(mr.covers(mr.base - 1, 1));
}

TEST(FabricRegions, DeregisterUnknownKeyIsNoOp)
{
    Fabric fabric;
    BackingStore store(1 * MiB);
    fabric.attachNode(1, &store);
    EXPECT_NO_THROW(fabric.deregisterRegion(0xdead));
    MemoryRegion mr = fabric.registerRegion(1, 0, 1 * MiB);
    fabric.deregisterRegion(mr.key);
    EXPECT_NO_THROW(fabric.deregisterRegion(mr.key));   // double-free
}

TEST(ClLogWriterLimits, OversizeAppendRejected)
{
    std::vector<std::uint8_t> buffer;
    // Room for exactly one record (16B header + one 64B line).
    ClLogWriter writer(buffer, 100);
    std::vector<std::uint8_t> line(cacheLineSize, 0xab);
    EXPECT_TRUE(writer.appendRun(0x1000, line.data(), 1));
    std::size_t sizeAfterFirst = writer.sizeBytes();
    EXPECT_FALSE(writer.appendRun(0x2000, line.data(), 1));
    EXPECT_EQ(writer.sizeBytes(), sizeAfterFirst);   // buffer untouched
    EXPECT_EQ(writer.rejectedRuns(), 1u);
    EXPECT_EQ(writer.runs(), 1u);
}

// ---------------------------------------------------------------------
// RetryPolicy: exponential backoff, jitter bounds, budgets.
// ---------------------------------------------------------------------

TEST(RetryPolicyTest, ExponentialGrowthWithCap)
{
    RetryPolicy policy;
    policy.initialBackoffNs = 1000;
    policy.backoffMultiplier = 2.0;
    policy.maxBackoffNs = 5000;
    policy.jitterFraction = 0.0;   // deterministic schedule
    policy.maxAttempts = 16;
    RetryState state(policy, 1);
    SimClock clock;
    EXPECT_EQ(state.backoff(clock), 1000u);
    EXPECT_EQ(state.backoff(clock), 2000u);
    EXPECT_EQ(state.backoff(clock), 4000u);
    EXPECT_EQ(state.backoff(clock), 5000u);   // capped
    EXPECT_EQ(state.backoff(clock), 5000u);
    EXPECT_EQ(clock.now(), 17000u);
    EXPECT_EQ(state.spentNs(), 17000u);
    EXPECT_EQ(state.attempts(), 5u);
}

TEST(RetryPolicyTest, JitterNeverUndershootsBase)
{
    RetryPolicy policy;
    policy.initialBackoffNs = 1000;
    policy.backoffMultiplier = 1.0;   // hold the base constant
    policy.maxBackoffNs = 1000;
    policy.jitterFraction = 0.5;
    policy.maxAttempts = 100;
    RetryState state(policy, 7);
    SimClock clock;
    bool sawJitter = false;
    for (int i = 0; i < 100; ++i) {
        Tick charged = state.backoff(clock);
        EXPECT_GE(charged, 1000u);   // additive-only jitter
        EXPECT_LE(charged, 1500u);
        sawJitter = sawJitter || charged > 1000;
    }
    EXPECT_TRUE(sawJitter);
}

TEST(RetryPolicyTest, AttemptBudgetExhausts)
{
    RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.jitterFraction = 0.0;
    RetryState state(policy, 1);
    SimClock clock;
    for (int i = 0; i < 3; ++i) {
        EXPECT_TRUE(state.shouldRetry());
        state.backoff(clock);
    }
    EXPECT_FALSE(state.shouldRetry());
}

TEST(RetryPolicyTest, DeadlineBoundsTotalBackoff)
{
    RetryPolicy policy;
    policy.initialBackoffNs = 20'000;
    policy.jitterFraction = 0.0;
    policy.maxAttempts = 100;
    policy.deadlineNs = 50'000;
    RetryState state(policy, 1);
    SimClock clock;
    state.backoff(clock);   // 20k spent
    EXPECT_TRUE(state.shouldRetry());
    state.backoff(clock);   // 60k spent, past the deadline
    EXPECT_FALSE(state.shouldRetry());
}

TEST(RetryPolicyTest, ZeroJitterScheduleIsSeedIndependent)
{
    RetryPolicy policy;
    policy.jitterFraction = 0.0;
    policy.maxAttempts = 10;
    RetryState a(policy, 1), b(policy, 0xdeadbeef);
    SimClock ca, cb;
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(a.backoff(ca), b.backoff(cb)) << "attempt " << i;
    EXPECT_EQ(ca.now(), cb.now());
}

TEST(RetryPolicyTest, ZeroAttemptBudgetNeverRetries)
{
    RetryPolicy policy;
    policy.maxAttempts = 0;
    RetryState state(policy, 1);
    EXPECT_FALSE(state.shouldRetry());
}

TEST(RetryPolicyTest, HugeScheduleSaturatesInsteadOfWrapping)
{
    // An adversarial policy pushes the exponential schedule past 2^63
    // in the double domain. Each charged wait must pin to the ceiling
    // — never wrap to a tiny value — and spentNs must saturate.
    constexpr Tick tickMax = std::numeric_limits<Tick>::max();
    RetryPolicy policy;
    policy.initialBackoffNs = tickMax / 2;
    policy.backoffMultiplier = 1e6;
    policy.maxBackoffNs = tickMax;
    policy.jitterFraction = 0.5;
    policy.maxAttempts = 8;
    RetryState state(policy, 3);
    SimClock clock;
    for (int i = 0; i < 8; ++i) {
        Tick charged = state.backoff(clock);
        EXPECT_GE(charged, tickMax / 2) << "attempt " << i;
    }
    EXPECT_EQ(state.spentNs(), tickMax);   // saturated, not wrapped
    EXPECT_FALSE(state.shouldRetry());
}

// ---------------------------------------------------------------------
// FaultInjector: determinism and each fault shape in isolation.
// ---------------------------------------------------------------------

TEST(FaultInjectorTest, DecisionsAreSeedDeterministic)
{
    auto script = [](FaultInjector &fi) {
        fi.profile(1).dropProbability = 0.3;
        fi.profile(1).corruptProbability = 0.2;
        fi.profile(1).spikeProbability = 0.25;
    };
    FaultInjector a(42), b(42), c(43);
    script(a);
    script(b);
    script(c);
    bool diverged = false;
    for (int i = 0; i < 200; ++i) {
        FaultDecision da = a.decide(1, RdmaOpcode::Write, 4096);
        FaultDecision db = b.decide(1, RdmaOpcode::Write, 4096);
        FaultDecision dc = c.decide(1, RdmaOpcode::Write, 4096);
        EXPECT_EQ(da.status, db.status);
        EXPECT_EQ(da.extraLatencyNs, db.extraLatencyNs);
        EXPECT_EQ(da.corruptPayload, db.corruptPayload);
        EXPECT_EQ(da.corruptOffset, db.corruptOffset);
        EXPECT_EQ(da.corruptMask, db.corruptMask);
        diverged = diverged || da.status != dc.status ||
                   da.corruptPayload != dc.corruptPayload;
    }
    EXPECT_TRUE(diverged);   // a different seed tells a different story
}

TEST(FaultInjectorTest, FlapScheduleIsExact)
{
    FaultInjector fi(1);
    fi.profile(2).flapPeriodOps = 10;
    fi.profile(2).flapDownOps = 3;
    for (std::uint64_t op = 0; op < 30; ++op) {
        FaultDecision d = fi.decide(2, RdmaOpcode::Read, 64);
        if (op % 10 < 3)
            EXPECT_EQ(d.status, WcStatus::Timeout) << "op " << op;
        else
            EXPECT_EQ(d.status, WcStatus::Success) << "op " << op;
    }
    EXPECT_EQ(fi.opsSeen(2), 30u);
    EXPECT_EQ(fi.timeoutsInjected(), 9u);
}

TEST(FaultInjectorTest, BurstScheduleIsExact)
{
    FaultInjector fi(1);
    fi.profile(3).burstPeriodOps = 8;
    fi.profile(3).burstLength = 2;
    for (std::uint64_t op = 0; op < 16; ++op) {
        FaultDecision d = fi.decide(3, RdmaOpcode::Write, 64);
        if (op % 8 < 2)
            EXPECT_EQ(d.status, WcStatus::Dropped) << "op " << op;
        else
            EXPECT_EQ(d.status, WcStatus::Success) << "op " << op;
    }
    EXPECT_EQ(fi.dropsInjected(), 4u);
}

/** Net-layer fixture with an injector plugged into the fabric. */
class FaultyNetFixture : public ::testing::Test
{
  protected:
    FaultyNetFixture()
        : local(1 * MiB), remote(8 * MiB), poller(fabric.latency()),
          injector(99)
    {
        fabric.attachNode(0, &local);
        fabric.attachNode(1, &remote);
        mr = fabric.registerRegion(1, 0, 8 * MiB);
        fabric.setFaultInjector(&injector);
    }

    WorkRequest
    makeWr(RdmaOpcode opcode, void *buf, Addr remoteAddr,
           std::size_t len)
    {
        WorkRequest wr;
        wr.wrId = nextId++;
        wr.opcode = opcode;
        wr.localBuf = buf;
        wr.remoteKey = mr.key;
        wr.remoteAddr = remoteAddr;
        wr.length = len;
        return wr;
    }

    Fabric fabric;
    BackingStore local;
    BackingStore remote;
    MemoryRegion mr;
    CompletionQueue cq;
    Poller poller;
    FaultInjector injector;
    std::uint64_t nextId = 1;
};

TEST_F(FaultyNetFixture, DroppedWriteNeverLands)
{
    injector.profile(1).dropProbability = 1.0;
    QueuePair qp(fabric, 0, 1, cq);
    SimClock clock;
    std::uint64_t magic = 0xfeedfacecafebeefULL;
    PostResult posted = qp.post(makeWr(RdmaOpcode::Write, &magic, 4096,
                                       sizeof(magic)), clock);
    EXPECT_EQ(posted.status, WcStatus::Dropped);
    // The failure CQE is always pushed, signaled or not.
    EXPECT_EQ(posted.cqesPushed, 1u);
    WorkCompletion wc = poller.waitOne(cq, clock);
    EXPECT_EQ(wc.status, WcStatus::Dropped);
    std::uint64_t check = 0;
    remote.read(4096, &check, sizeof(check));
    EXPECT_EQ(check, 0u);
    EXPECT_EQ(injector.dropsInjected(), 1u);
}

TEST_F(FaultyNetFixture, CorruptedWriteLandsWithOneFlippedBit)
{
    injector.profile(1).corruptProbability = 1.0;
    QueuePair qp(fabric, 0, 1, cq);
    SimClock clock;
    std::vector<std::uint8_t> out(256, 0x55);
    // End-host DMA corruption: the op still reports Success.
    EXPECT_TRUE(qp.post(makeWr(RdmaOpcode::Write, out.data(), 0,
                               out.size()), clock));
    WorkCompletion wc = poller.waitOne(cq, clock);
    EXPECT_EQ(wc.status, WcStatus::Success);

    std::vector<std::uint8_t> in(256, 0);
    remote.read(0, in.data(), in.size());
    int bitsFlipped = 0;
    for (std::size_t i = 0; i < in.size(); ++i) {
        std::uint8_t diff = in[i] ^ out[i];
        while (diff != 0) {
            bitsFlipped += diff & 1;
            diff >>= 1;
        }
    }
    EXPECT_EQ(bitsFlipped, 1);
    EXPECT_EQ(injector.corruptionsInjected(), 1u);
}

TEST_F(FaultyNetFixture, CorruptedReadIsDroppedByTransport)
{
    injector.profile(1).corruptProbability = 1.0;
    QueuePair qp(fabric, 0, 1, cq);
    SimClock clock;
    std::uint64_t magic = 0x1234567890abcdefULL;
    remote.write(512, &magic, sizeof(magic));
    std::uint64_t in = 0;
    // The ICRC catches the corrupted response: the issuer sees a drop
    // and the bad bytes never reach its buffer.
    EXPECT_FALSE(qp.post(makeWr(RdmaOpcode::Read, &in, 512,
                                sizeof(in)), clock));
    WorkCompletion wc = poller.waitOne(cq, clock);
    EXPECT_EQ(wc.status, WcStatus::Dropped);
    EXPECT_EQ(in, 0u);
}

TEST_F(FaultyNetFixture, LatencySpikeDelaysCompletion)
{
    QueuePair qp(fabric, 0, 1, cq);
    std::vector<std::uint8_t> buf(4096, 1);

    SimClock calm;
    qp.post(makeWr(RdmaOpcode::Write, buf.data(), 0, buf.size()), calm);
    Tick calmDone = poller.waitOne(cq, calm).completeAt;

    injector.profile(1).spikeProbability = 1.0;
    injector.profile(1).spikeNs = 250'000;
    SimClock spiky;
    qp.post(makeWr(RdmaOpcode::Write, buf.data(), 0, buf.size()),
            spiky);
    Tick spikyDone = poller.waitOne(cq, spiky).completeAt;
    EXPECT_GE(spikyDone, calmDone + 250'000);
    EXPECT_EQ(injector.spikesInjected(), 1u);
}

TEST_F(FaultyNetFixture, PermanentFailureMarksNodeDown)
{
    injector.profile(1).failAtOp = 3;
    QueuePair qp(fabric, 0, 1, cq);
    SimClock clock;
    std::uint8_t b = 7;
    EXPECT_TRUE(qp.post(makeWr(RdmaOpcode::Write, &b, 0, 1), clock));
    poller.waitOne(cq, clock);
    EXPECT_TRUE(qp.post(makeWr(RdmaOpcode::Write, &b, 1, 1), clock));
    poller.waitOne(cq, clock);
    EXPECT_FALSE(fabric.nodeDown(1));

    // The third op kills the node for good.
    EXPECT_FALSE(qp.post(makeWr(RdmaOpcode::Write, &b, 2, 1), clock));
    EXPECT_EQ(poller.waitOne(cq, clock).status, WcStatus::Timeout);
    EXPECT_TRUE(fabric.nodeDown(1));

    // Later ops fail at the fabric level, before the injector.
    EXPECT_FALSE(qp.post(makeWr(RdmaOpcode::Write, &b, 3, 1), clock));
    EXPECT_EQ(poller.waitOne(cq, clock).status,
              WcStatus::RemoteUnreachable);
}

TEST_F(FaultyNetFixture, MidChainFailureStopsLaterWrites)
{
    injector.profile(1).failAtOp = 3;
    QueuePair qp(fabric, 0, 1, cq);
    SimClock clock;
    std::vector<std::uint8_t> payload(64);
    for (std::size_t i = 0; i < payload.size(); ++i)
        payload[i] = static_cast<std::uint8_t>(i + 1);

    std::vector<WorkRequest> wrs;
    for (int i = 0; i < 5; ++i) {
        WorkRequest wr = makeWr(RdmaOpcode::Write, payload.data(),
                                Addr(i) * 64, 64);
        wr.signaled = i == 4;
        wrs.push_back(wr);
    }
    EXPECT_FALSE(qp.postLinked(wrs, clock));
    EXPECT_EQ(poller.waitOne(cq, clock).status, WcStatus::Timeout);

    // WRs before the failure landed; the rest never executed.
    for (int i = 0; i < 5; ++i) {
        std::vector<std::uint8_t> check(64, 0);
        remote.read(Addr(i) * 64, check.data(), check.size());
        if (i < 2)
            EXPECT_EQ(check, payload) << "wr " << i;
        else
            EXPECT_EQ(check, std::vector<std::uint8_t>(64, 0))
                << "wr " << i;
    }
}

// ---------------------------------------------------------------------
// CL-log integrity: CRC detection, corrupt-framing safety, NAKs.
// ---------------------------------------------------------------------

TEST(ClLogIntegrity, CrcDetectsPayloadBitFlip)
{
    std::vector<std::uint8_t> buffer;
    ClLogWriter writer(buffer);
    std::vector<std::uint8_t> lines(2 * cacheLineSize, 0x5a);
    writer.appendRun(0x4000, lines.data(), 2);

    // Pristine log verifies.
    {
        ClLogReader reader(buffer.data(), buffer.size());
        const std::uint8_t *payload = nullptr;
        ClLogEntryHeader header = reader.next(payload);
        EXPECT_EQ(header.crc, clLogRecordCrc(header.remoteAddr,
                                             header.lineCount, payload));
    }

    buffer[sizeof(ClLogEntryHeader) + 17] ^= 0x04;   // one payload bit

    ClLogReader reader(buffer.data(), buffer.size());
    const std::uint8_t *payload = nullptr;
    ClLogEntryHeader header = reader.next(payload);
    EXPECT_NE(header.crc, clLogRecordCrc(header.remoteAddr,
                                         header.lineCount, payload));
}

TEST(ClLogIntegrity, TryNextSurvivesCorruptHeader)
{
    std::vector<std::uint8_t> buffer;
    ClLogWriter writer(buffer);
    std::vector<std::uint8_t> line(cacheLineSize, 1);
    writer.appendRun(0x4000, line.data(), 1);

    // Blast the lineCount field into nonsense: a checked reader must
    // reject the log instead of walking off the buffer.
    ClLogEntryHeader mangled;
    std::memcpy(&mangled, buffer.data(), sizeof(mangled));
    mangled.lineCount = 0x7fffffff;
    std::memcpy(buffer.data(), &mangled, sizeof(mangled));

    ClLogReader reader(buffer.data(), buffer.size());
    ClLogEntryHeader header;
    const std::uint8_t *payload = nullptr;
    EXPECT_FALSE(reader.tryNext(header, payload));
    EXPECT_THROW({
        ClLogReader strict(buffer.data(), buffer.size());
        const std::uint8_t *p = nullptr;
        strict.next(p);
    }, PanicError);
}

TEST(ClLogIntegrity, ReceiverNaksCorruptLogAppliesNothing)
{
    Fabric fabric;
    MemoryNode node(fabric, 1, 16 * MiB);
    auto slab = node.allocateSlab(1 * MiB);
    ASSERT_TRUE(slab.has_value());

    std::vector<std::uint8_t> logBuf;
    ClLogWriter writer(logBuf);
    std::vector<std::uint8_t> lines(3 * cacheLineSize);
    for (std::size_t i = 0; i < lines.size(); ++i)
        lines[i] = static_cast<std::uint8_t>(i * 7 + 1);
    writer.appendRun(*slab, lines.data(), 1);
    writer.appendRun(*slab + 4096, lines.data() + cacheLineSize, 2);

    // Corrupt the SECOND record's payload: verify-before-apply means
    // even the intact first record must not land.
    std::vector<std::uint8_t> corrupt = logBuf;
    corrupt[corrupt.size() - 1] ^= 0x80;
    node.store().write(node.logRegion().base, corrupt.data(),
                       corrupt.size());
    LogReceiptStats stats = node.receiveLog(0, corrupt.size());
    EXPECT_FALSE(stats.ok);
    EXPECT_GE(stats.corruptRecords, 1u);
    EXPECT_EQ(node.linesReceived(), 0u);
    EXPECT_EQ(node.logsRejected(), 1u);
    std::vector<std::uint8_t> check(cacheLineSize, 0);
    node.store().read(*slab, check.data(), check.size());
    EXPECT_EQ(check, std::vector<std::uint8_t>(cacheLineSize, 0));

    // The retransmitted (intact) log applies cleanly.
    node.store().write(node.logRegion().base, logBuf.data(),
                       logBuf.size());
    stats = node.receiveLog(0, logBuf.size());
    EXPECT_TRUE(stats.ok);
    EXPECT_EQ(stats.runs, 2u);
    EXPECT_EQ(stats.lines, 3u);
    node.store().read(*slab, check.data(), check.size());
    EXPECT_EQ(check, std::vector<std::uint8_t>(
                         lines.begin(), lines.begin() + cacheLineSize));
}

// ---------------------------------------------------------------------
// Controller: failure detection and health transitions.
// ---------------------------------------------------------------------

TEST(ControllerHealth, ConsecutiveFailuresDeclareDeath)
{
    Fabric fabric;
    Controller controller(1 * MiB);
    MemoryNode a(fabric, 1, 16 * MiB), b(fabric, 2, 16 * MiB);
    controller.registerNode(a);
    controller.registerNode(b);

    for (int i = 0; i < 4; ++i)
        controller.reportOpFailure(1);
    EXPECT_EQ(controller.health(1), NodeHealth::Healthy);
    controller.reportOpSuccess(1);   // resets the streak
    for (int i = 0; i < 4; ++i)
        controller.reportOpFailure(1);
    EXPECT_EQ(controller.health(1), NodeHealth::Healthy);
    controller.reportOpFailure(1);   // fifth consecutive
    EXPECT_EQ(controller.health(1), NodeHealth::Failed);
    EXPECT_EQ(controller.nodesFailed(), 1u);
    EXPECT_EQ(controller.healthyNodeCount(), 1u);

    auto failed = controller.takeNewlyFailed();
    ASSERT_EQ(failed.size(), 1u);
    EXPECT_EQ(failed[0], 1u);
    EXPECT_TRUE(controller.takeNewlyFailed().empty());

    // A failed node takes no new placements.
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(
            controller.allocateSlab(PlacementRequest{})->where.node,
            2u);
}

TEST(ControllerHealth, DrainingNodeTakesNoNewSlabs)
{
    Fabric fabric;
    Controller controller(1 * MiB);
    MemoryNode a(fabric, 1, 16 * MiB), b(fabric, 2, 16 * MiB);
    controller.registerNode(a);
    controller.registerNode(b);
    controller.drainNode(1);
    EXPECT_EQ(controller.health(1), NodeHealth::Draining);
    for (int i = 0; i < 3; ++i)
        EXPECT_EQ(
            controller.allocateSlab(PlacementRequest{})->where.node,
            2u);
    EXPECT_TRUE(controller.allocateSlab(
                    PlacementRequest{.avoid = {2}}) == std::nullopt);
}

// ---------------------------------------------------------------------
// Runtime-level recovery: rebuilds, decommission, retransmits.
// ---------------------------------------------------------------------

/** A rack + Kona stack with small FMem and optional replication. */
struct KonaStack
{
    explicit KonaStack(std::size_t replication = 1,
                       std::size_t fmemSize = 1 * MiB)
        : controller(1 * MiB)
    {
        for (NodeId id = 1; id <= 3; ++id) {
            nodes.push_back(std::make_unique<MemoryNode>(
                fabric, id, 64 * MiB));
            controller.registerNode(*nodes.back());
        }
        KonaConfig cfg;
        cfg.fpga.vfmemSize = 64 * MiB;
        cfg.fpga.fmemSize = fmemSize;
        cfg.hierarchy = HierarchyConfig::scaled();
        cfg.replicationFactor = replication;
        cfg.failurePolicy = FailurePolicy::WaitRetry;
        runtime = std::make_unique<KonaRuntime>(fabric, controller, 0,
                                                cfg);
    }

    Fabric fabric;
    Controller controller;
    std::vector<std::unique_ptr<MemoryNode>> nodes;
    std::unique_ptr<KonaRuntime> runtime;
};

class FaultyKonaFixture : public ::testing::Test, public KonaStack
{
  protected:
    using KonaStack::KonaStack;

    /** Write a seeded pattern of @p words u64s starting at @p base. */
    void
    writePattern(Addr base, std::size_t words, std::uint64_t seed)
    {
        Rng rng(seed);
        for (std::size_t i = 0; i < words; ++i)
            runtime->store<std::uint64_t>(base + i * 8, rng.next());
    }

    /** Check the pattern reads back intact. */
    void
    expectPattern(Addr base, std::size_t words, std::uint64_t seed)
    {
        Rng rng(seed);
        for (std::size_t i = 0; i < words; ++i) {
            ASSERT_EQ(runtime->load<std::uint64_t>(base + i * 8),
                      rng.next())
                << "word " << i;
        }
    }
};

TEST_F(FaultyKonaFixture, RebuildRestoresRedundancyAfterNodeLoss)
{
    Addr a = runtime->allocate(3 * MiB, pageSize);
    writePattern(a, 3 * MiB / 8, 11);
    runtime->writebackAll();

    NodeId lost = runtime->fpga().translation().translate(a).node;
    RebuildReport report = runtime->recoverFromNodeFailure(lost);
    EXPECT_GT(report.slabsScanned, 0u);
    EXPECT_GT(report.slabsRebuilt, 0u);
    EXPECT_EQ(report.slabsLost, 0u);
    EXPECT_EQ(report.slabsUnrebuilt, 0u);
    EXPECT_GT(report.primariesPromoted, 0u);
    EXPECT_FALSE(runtime->degraded());

    // No placement references the dead node anymore.
    runtime->fpga().translation().forEachSlab([lost](MappedSlab &slab) {
        EXPECT_NE(slab.primary.where.node, lost);
        EXPECT_EQ(slab.replicas.size(), 1u);
        for (const SlabGrant &r : slab.replicas)
            EXPECT_NE(r.where.node, lost);
    });

    expectPattern(a, 3 * MiB / 8, 11);
    ReliabilityStats r = runtime->reliability();
    EXPECT_EQ(r.nodesFailed, 1u);
    EXPECT_GT(r.slabsRebuilt, 0u);
    EXPECT_GT(r.replicaPromotions, 0u);
    EXPECT_EQ(r.slabsLost, 0u);
}

TEST_F(FaultyKonaFixture, FailureDetectionTriggersRebuildOnAccessPath)
{
    Addr a = runtime->allocate(2 * MiB, pageSize);
    writePattern(a, 2 * MiB / 8, 12);
    runtime->writebackAll();

    // The node silently dies; nobody calls the operator API. Ordinary
    // accesses must observe failures, cross the threshold and rebuild.
    // The fetch path fails over to the replica (and promotes it) on the
    // first failure, so the dead node only sees a handful of ops — use
    // a threshold of 1 to exercise the detection wiring.
    controller.setFailureThreshold(1);
    NodeId lost = runtime->fpga().translation().translate(a).node;
    fabric.setNodeDown(lost, true);
    expectPattern(a, 2 * MiB / 8, 12);

    EXPECT_EQ(controller.health(lost), NodeHealth::Failed);
    ReliabilityStats r = runtime->reliability();
    EXPECT_EQ(r.nodesFailed, 1u);
    EXPECT_GT(r.slabsRebuilt, 0u);
    runtime->fpga().translation().forEachSlab([lost](MappedSlab &slab) {
        EXPECT_NE(slab.primary.where.node, lost);
    });
}

TEST_F(FaultyKonaFixture, DecommissionDrainsAndRemovesNode)
{
    Addr a = runtime->allocate(3 * MiB, pageSize);
    writePattern(a, 3 * MiB / 8, 13);
    runtime->writebackAll();

    NodeId leaving = runtime->fpga().translation().translate(a).node;
    RebuildReport report = runtime->decommissionNode(leaving);
    EXPECT_EQ(report.slabsUnrebuilt, 0u);
    EXPECT_GT(report.slabsRebuilt, 0u);
    EXPECT_EQ(controller.nodeCount(), 2u);
    runtime->fpga().translation().forEachSlab(
        [leaving](MappedSlab &slab) {
            EXPECT_NE(slab.primary.where.node, leaving);
            for (const SlabGrant &r : slab.replicas)
                EXPECT_NE(r.where.node, leaving);
        });
    expectPattern(a, 3 * MiB / 8, 13);
}

/** Same stack without replication, for transient-fault tests. */
class TransientFaultFixture : public FaultyKonaFixture
{
  protected:
    TransientFaultFixture()
        : FaultyKonaFixture(/*replication=*/0, /*fmemSize=*/512 * KiB)
    {
        // Transient faults only: make sure noisy links never trip the
        // permanent-failure detector.
        controller.setFailureThreshold(1'000'000);
    }
};

TEST_F(TransientFaultFixture, EvictionRetransmitsUntilLogsVerify)
{
    FaultInjector injector(0xc0ffee);
    for (NodeId id = 1; id <= 3; ++id)
        injector.profile(id).corruptProbability = 0.4;
    fabric.setFaultInjector(&injector);

    Addr a = runtime->allocate(2 * MiB, pageSize);
    writePattern(a, 2 * MiB / 8, 21);
    runtime->writebackAll();

    EXPECT_GT(runtime->evictionHandler().checksumNaks(), 0u);
    EXPECT_GT(runtime->evictionHandler().logRetransmits(), 0u);
    std::uint64_t rejected = 0;
    for (auto &node : nodes)
        rejected += node->logsRejected();
    EXPECT_GT(rejected, 0u);

    // With the noise gone, the remote image must be exact.
    fabric.setFaultInjector(nullptr);
    expectPattern(a, 2 * MiB / 8, 21);
    ReliabilityStats r = runtime->reliability();
    EXPECT_GT(r.checksumFailures, 0u);
    EXPECT_GT(r.retransmits, 0u);
    EXPECT_EQ(r.nodesFailed, 0u);
}

/** Read the full mapped VFMem range back through the runtime. */
std::vector<std::uint8_t>
dumpMapped(KonaRuntime &runtime)
{
    Addr base = runtime.config().fpga.vfmemBase;
    std::size_t bytes = 0;
    runtime.fpga().translation().forEachSlab(
        [&bytes](MappedSlab &slab) { bytes += slab.primary.size; });
    std::vector<std::uint8_t> image(bytes);
    constexpr std::size_t chunk = 64 * KiB;
    for (std::size_t off = 0; off < bytes; off += chunk) {
        runtime.read(base + off, image.data() + off,
                     std::min(chunk, bytes - off));
    }
    return image;
}

TEST_F(TransientFaultFixture, DifferentialMatchesFaultFreeOracle)
{
    // Oracle: an identical stack on a quiet fabric.
    KonaStack oracle(/*replication=*/0, /*fmemSize=*/512 * KiB);

    FaultInjector injector(0xd1ff);
    for (NodeId id = 1; id <= 3; ++id) {
        injector.profile(id).dropProbability = 0.05;
        injector.profile(id).corruptProbability = 0.05;
        injector.profile(id).spikeProbability = 0.1;
    }
    fabric.setFaultInjector(&injector);

    auto exercise = [](KonaRuntime &rt) {
        Addr a = rt.allocate(2 * MiB, pageSize);
        Rng rng(31);
        for (int i = 0; i < 40000; ++i) {
            Addr addr = a + rng.below(2 * MiB - 8);
            if (rng.chance(0.7))
                rt.store<std::uint64_t>(addr, rng.next());
            else
                rt.load<std::uint64_t>(addr);
        }
        rt.writebackAll();
        return a;
    };
    exercise(*runtime);
    exercise(*oracle.runtime);

    EXPECT_EQ(dumpMapped(*runtime), dumpMapped(*oracle.runtime));
    ReliabilityStats r = runtime->reliability();
    EXPECT_GT(r.retries + r.retransmits, 0u);
    EXPECT_EQ(r.nodesFailed, 0u);
    EXPECT_FALSE(runtime->degraded());
}

// ---------------------------------------------------------------------
// The scripted scenario: drops + spikes + corruption + one permanent
// node failure across every Table 2 workload, vs a fault-free oracle.
// ---------------------------------------------------------------------

struct ScenarioRun
{
    std::vector<std::uint8_t> image;
    ReliabilityStats reliability;
};

ScenarioRun
runScenario(const std::string &name, bool faulty)
{
    Fabric fabric;
    Controller controller(1 * MiB);
    std::vector<std::unique_ptr<MemoryNode>> nodes;
    for (NodeId id = 1; id <= 3; ++id) {
        nodes.push_back(
            std::make_unique<MemoryNode>(fabric, id, 128 * MiB));
        controller.registerNode(*nodes.back());
    }

    KonaConfig cfg;
    cfg.fpga.vfmemSize = 128 * MiB;
    cfg.fpga.fmemSize = 512 * KiB;
    cfg.hierarchy = HierarchyConfig::scaled();
    cfg.replicationFactor = 1;
    cfg.evict.mode = EvictionMode::ClLog;
    cfg.failurePolicy = FailurePolicy::WaitRetry;
    KonaRuntime runtime(fabric, controller, 0, cfg);

    FaultInjector injector(0x5ca1e);
    if (faulty) {
        for (NodeId id = 1; id <= 3; ++id) {
            injector.profile(id).dropProbability = 0.01;
            injector.profile(id).corruptProbability = 0.01;
            injector.profile(id).spikeProbability = 0.05;
        }
        // Permanently kill the node the first allocations land on —
        // it is guaranteed to hold live data when it dies.
        NodeId victim = runtime.fpga().translation()
                            .translate(cfg.fpga.vfmemBase).node;
        injector.profile(victim).failAtOp = 60;
        fabric.setFaultInjector(&injector);
    }

    WorkloadContext context(
        runtime,
        [&runtime](std::size_t s, std::size_t a) {
            return runtime.allocate(s, a);
        },
        [&runtime](Addr a) { runtime.deallocate(a); });
    WorkloadScale scale;
    scale.factor = 0.02;
    auto workload = makeWorkload(name, context, scale);
    workload->setup();
    workload->run(std::min<std::uint64_t>(defaultWindowOps(name), 1500));
    runtime.writebackAll();

    ScenarioRun result;
    result.image = dumpMapped(runtime);
    result.reliability = runtime.reliability();
    return result;
}

TEST(FaultScenario, AllWorkloadsSurviveScriptedFaults)
{
    std::uint64_t retries = 0, retransmits = 0, promotions = 0,
                  rebuilds = 0;
    for (const std::string &name : table2WorkloadNames()) {
        SCOPED_TRACE(name);
        ScenarioRun faulty = runScenario(name, true);
        ScenarioRun oracle = runScenario(name, false);

        // Byte-exact final image despite the faults.
        ASSERT_EQ(faulty.image.size(), oracle.image.size());
        EXPECT_TRUE(faulty.image == oracle.image);

        // The permanent failure was detected and healed.
        EXPECT_EQ(faulty.reliability.nodesFailed, 1u);
        EXPECT_EQ(faulty.reliability.slabsLost, 0u);
        EXPECT_EQ(oracle.reliability.nodesFailed, 0u);

        retries += faulty.reliability.retries;
        retransmits += faulty.reliability.retransmits;
        promotions += faulty.reliability.replicaPromotions;
        rebuilds += faulty.reliability.slabsRebuilt;
    }
    EXPECT_GT(retries, 0u);
    EXPECT_GT(retransmits, 0u);
    EXPECT_GT(promotions, 0u);
    EXPECT_GT(rebuilds, 0u);
}

} // namespace
} // namespace kona
