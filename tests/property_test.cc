/**
 * @file
 * Property-style parameterized sweeps across the whole stack:
 * workload determinism, KvStore equivalence against a reference map,
 * Zipf invariants, TLB capacity behaviour, linked-chain RDMA
 * integrity, and snapshot-diff equivalence with the dirty bitmap.
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>

#include "common/rng.h"
#include "mem/backing_store.h"
#include "mem/dirty_bitmap.h"
#include "mem/page_snapshot.h"
#include "mem/tlb.h"
#include "net/queue_pair.h"
#include "workloads/kv_store.h"
#include "workloads/registry.h"

namespace kona {
namespace {

/** Plain-memory environment for workload property tests. */
struct Env
{
    explicit Env(std::size_t size = 256 * MiB)
        : store(size), heap(pageSize, size - pageSize),
          context(
              store,
              [this](std::size_t s, std::size_t a) {
                  auto addr = heap.allocate(s, a);
                  KONA_ASSERT(addr.has_value(), "heap exhausted");
                  return *addr;
              },
              [this](Addr a) { heap.deallocate(a); })
    {}

    BackingStore store;
    RegionAllocator heap;
    WorkloadContext context;
};

/** FNV-1a over a slice of the simulated heap. */
std::uint64_t
fingerprint(BackingStore &store, std::size_t bytes)
{
    std::vector<std::uint8_t> buf(bytes);
    store.read(pageSize, buf.data(), bytes);
    std::uint64_t h = 1469598103934665603ULL;
    for (std::uint8_t b : buf) {
        h ^= b;
        h *= 1099511628211ULL;
    }
    return h;
}

class WorkloadDeterminism
    : public ::testing::TestWithParam<std::string>
{
};

TEST_P(WorkloadDeterminism, SameSeedSameMemoryImage)
{
    auto runOnce = [&]() {
        Env env;
        WorkloadScale scale;
        scale.factor = 0.05;
        auto workload = makeWorkload(GetParam(), env.context, scale);
        workload->setup();
        workload->run(std::min<std::uint64_t>(
            defaultWindowOps(GetParam()) * 2, 4000));
        return fingerprint(env.store, 256 * KiB);
    };
    EXPECT_EQ(runOnce(), runOnce());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadDeterminism,
    ::testing::ValuesIn(table2WorkloadNames()),
    [](const ::testing::TestParamInfo<std::string> &info) {
        std::string name = info.param;
        for (char &c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

class KvStoreEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(KvStoreEquivalence, MatchesReferenceMap)
{
    Env env;
    KvStore store(env.context, 4096, true);
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>> ref;
    Rng rng(GetParam());
    std::vector<std::uint8_t> value;

    for (int op = 0; op < 4000; ++op) {
        std::uint64_t key = rng.below(1200);
        double dice = rng.uniform();
        if (dice < 0.5) {
            std::size_t len = 1 + rng.below(150);
            value.resize(len);
            for (auto &b : value)
                b = static_cast<std::uint8_t>(rng.next());
            store.set(key, value.data(),
                      static_cast<std::uint32_t>(len));
            ref[key] = value;
        } else if (dice < 0.8) {
            bool inStore = store.get(key, value);
            auto it = ref.find(key);
            ASSERT_EQ(inStore, it != ref.end()) << "op " << op;
            if (inStore)
                ASSERT_EQ(value, it->second) << "op " << op;
        } else {
            bool erased = store.erase(key);
            ASSERT_EQ(erased, ref.erase(key) == 1) << "op " << op;
        }
        ASSERT_EQ(store.size(), ref.size());
    }

    // Final sweep.
    for (const auto &[key, expected] : ref) {
        ASSERT_TRUE(store.get(key, value));
        ASSERT_EQ(value, expected);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvStoreEquivalence,
                         ::testing::Values(1, 2, 3, 4));

class ZipfProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(ZipfProperty, BoundsAndMonotoneSkew)
{
    Rng rng(GetParam());
    for (double theta : {0.0, 0.3, 0.6, 0.9}) {
        Rng local(GetParam() * 100 + static_cast<int>(theta * 10));
        ZipfGenerator zipf(5000, theta, local);
        std::uint64_t hotCount = 0;
        for (int i = 0; i < 5000; ++i) {
            std::uint64_t v = zipf.next();
            ASSERT_LT(v, 5000u);
            if (v < 50)
                ++hotCount;
        }
        // Skew grows with theta: at 0.9 the hottest 1% draws a large
        // share; at 0 it draws ~1%.
        if (theta == 0.0)
            EXPECT_LT(hotCount, 200u);
        if (theta == 0.9)
            EXPECT_GT(hotCount, 800u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZipfProperty,
                         ::testing::Values(7, 8, 9));

class TlbCapacitySweep
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(TlbCapacitySweep, WorkingSetFitBehaviour)
{
    std::size_t capacity = GetParam();
    Tlb tlb(capacity);
    // First pass over exactly `capacity` pages: all miss, all fit.
    for (Addr vpn = 0; vpn < capacity; ++vpn) {
        EXPECT_FALSE(tlb.lookup(vpn));
        tlb.insert(vpn);
    }
    // Second pass: all hit.
    for (Addr vpn = 0; vpn < capacity; ++vpn)
        EXPECT_TRUE(tlb.lookup(vpn));
    // A working set of capacity+1 pages accessed round-robin always
    // misses under LRU.
    Tlb thrash(capacity);
    for (int round = 0; round < 3; ++round) {
        for (Addr vpn = 0; vpn <= capacity; ++vpn) {
            EXPECT_FALSE(thrash.lookup(vpn));
            thrash.insert(vpn);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Capacities, TlbCapacitySweep,
                         ::testing::Values(1, 2, 16, 64, 1536));

class LinkedChainIntegrity
    : public ::testing::TestWithParam<std::size_t>
{
};

TEST_P(LinkedChainIntegrity, AllPayloadsLand)
{
    std::size_t chainLen = GetParam();
    Fabric fabric;
    BackingStore local(1 * MiB), remote(8 * MiB);
    fabric.attachNode(0, &local);
    fabric.attachNode(1, &remote);
    MemoryRegion mr = fabric.registerRegion(1, 0, 8 * MiB);
    CompletionQueue cq;
    QueuePair qp(fabric, 0, 1, cq);
    Poller poller(fabric.latency());
    SimClock clock;

    Rng rng(chainLen);
    std::vector<std::vector<std::uint8_t>> payloads(chainLen);
    std::vector<WorkRequest> chain(chainLen);
    for (std::size_t i = 0; i < chainLen; ++i) {
        payloads[i].resize(1 + rng.below(500));
        for (auto &b : payloads[i])
            b = static_cast<std::uint8_t>(rng.next());
        chain[i].wrId = i + 1;
        chain[i].opcode = RdmaOpcode::Write;
        chain[i].localBuf = payloads[i].data();
        chain[i].remoteKey = mr.key;
        chain[i].remoteAddr = i * 1024;
        chain[i].length = payloads[i].size();
        chain[i].signaled = i + 1 == chainLen;
    }
    ASSERT_TRUE(qp.postLinked(chain, clock));
    poller.waitOne(cq, clock);

    for (std::size_t i = 0; i < chainLen; ++i) {
        std::vector<std::uint8_t> check(payloads[i].size());
        remote.read(i * 1024, check.data(), check.size());
        ASSERT_EQ(check, payloads[i]) << "entry " << i;
    }
}

INSTANTIATE_TEST_SUITE_P(ChainLengths, LinkedChainIntegrity,
                         ::testing::Values(1, 2, 7, 32, 128));

/** The dirty bitmap (coherence view) and a snapshot diff (content
 *  view) must agree whenever every write changes bytes. */
class TrackingEquivalence : public ::testing::TestWithParam<int>
{
};

TEST_P(TrackingEquivalence, BitmapMatchesSnapshotDiff)
{
    BackingStore store(4 * MiB);
    PageSnapshotStore snaps;
    DirtyLineBitmap bitmap;
    Rng rng(GetParam());

    constexpr int pages = 32;
    for (Addr pn = 0; pn < pages; ++pn)
        snaps.capture(pn, store);

    for (int i = 0; i < 500; ++i) {
        Addr pn = rng.below(pages);
        std::size_t offset = rng.below(pageSize - 8);
        Addr addr = pn * pageSize + offset;
        // All eight bytes nonzero, so every touched line's content
        // provably differs from the all-zero snapshot.
        std::uint64_t stamp = 0x0101010101010101ULL *
                              (static_cast<std::uint64_t>(i % 255) +
                               1);
        store.write(addr, &stamp, sizeof(stamp));
        bitmap.markRange(addr, sizeof(stamp));
    }

    for (Addr pn = 0; pn < pages; ++pn) {
        std::uint64_t diffMask = snaps.diffLines(pn, store);
        std::uint64_t trackMask = bitmap.pageMask(pn);
        // Every content change was tracked...
        EXPECT_EQ(diffMask & ~trackMask, 0u) << "page " << pn;
        // ...and tracking at most adds lines whose write re-wrote
        // identical bytes (impossible here), so the masks are equal.
        EXPECT_EQ(diffMask, trackMask) << "page " << pn;
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TrackingEquivalence,
                         ::testing::Values(21, 22, 23, 24));

} // namespace
} // namespace kona
