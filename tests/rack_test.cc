/**
 * @file
 * Unit tests for src/rack: the controller's slab placement, memory
 * node slab carving, the CL-log wire format, and the Cache-line Log
 * Receiver's line distribution.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "common/rng.h"
#include "rack/cl_log.h"
#include "rack/controller.h"

namespace kona {
namespace {

TEST(ClLog, WriterReaderRoundTrip)
{
    std::vector<std::uint8_t> buffer;
    ClLogWriter writer(buffer);

    std::vector<std::uint8_t> run1(2 * cacheLineSize, 0xAA);
    std::vector<std::uint8_t> run2(1 * cacheLineSize, 0xBB);
    writer.appendRun(0x1000, run1.data(), 2);
    writer.appendRun(0x9000, run2.data(), 1);
    EXPECT_EQ(writer.runs(), 2u);
    EXPECT_EQ(writer.lines(), 3u);
    EXPECT_EQ(writer.sizeBytes(),
              2 * sizeof(ClLogEntryHeader) + 3 * cacheLineSize);

    ClLogReader reader(buffer.data(), buffer.size());
    const std::uint8_t *payload = nullptr;
    ClLogEntryHeader h1 = reader.next(payload);
    EXPECT_EQ(h1.remoteAddr, 0x1000u);
    EXPECT_EQ(h1.lineCount, 2u);
    EXPECT_EQ(std::memcmp(payload, run1.data(), run1.size()), 0);
    ASSERT_FALSE(reader.atEnd());
    ClLogEntryHeader h2 = reader.next(payload);
    EXPECT_EQ(h2.remoteAddr, 0x9000u);
    EXPECT_EQ(h2.lineCount, 1u);
    EXPECT_TRUE(reader.atEnd());
}

TEST(ClLog, TruncatedLogIsFatal)
{
    std::vector<std::uint8_t> buffer;
    ClLogWriter writer(buffer);
    std::vector<std::uint8_t> run(cacheLineSize, 1);
    writer.appendRun(0, run.data(), 1);
    buffer.resize(buffer.size() - 10);   // corrupt
    ClLogReader reader(buffer.data(), buffer.size());
    const std::uint8_t *payload = nullptr;
    EXPECT_THROW(reader.next(payload), PanicError);
}

class RackFixture : public ::testing::Test
{
  protected:
    RackFixture() : controller(1 * MiB)
    {
        nodes.push_back(
            std::make_unique<MemoryNode>(fabric, 10, 16 * MiB));
        nodes.push_back(
            std::make_unique<MemoryNode>(fabric, 11, 16 * MiB));
        for (auto &node : nodes)
            controller.registerNode(*node);
    }

    Fabric fabric;
    Controller controller;
    std::vector<std::unique_ptr<MemoryNode>> nodes;
};

TEST_F(RackFixture, SlabAllocationBalancesNodes)
{
    std::vector<SlabGrant> grants;
    for (int i = 0; i < 8; ++i)
        grants.push_back(
            *controller.allocateSlab(PlacementRequest{.required = true}));
    int onFirst = 0;
    for (const auto &g : grants) {
        if (g.where.node == 10)
            ++onFirst;
        EXPECT_EQ(g.size, 1 * MiB);
    }
    // Most-free-first placement alternates between equal nodes.
    EXPECT_EQ(onFirst, 4);
    EXPECT_EQ(controller.slabsAllocated(), 8u);
}

TEST_F(RackFixture, SlabIdsUnique)
{
    auto a = *controller.allocateSlab(PlacementRequest{.required = true});
    auto b = *controller.allocateSlab(PlacementRequest{.required = true});
    EXPECT_NE(a.slab, b.slab);
}

TEST_F(RackFixture, FreeSlabReturnsCapacity)
{
    std::size_t before = controller.totalFree();
    SlabGrant g =
        *controller.allocateSlab(PlacementRequest{.required = true});
    EXPECT_EQ(controller.totalFree(), before - 1 * MiB);
    controller.freeSlab(g);
    EXPECT_EQ(controller.totalFree(), before);
}

TEST_F(RackFixture, ExhaustionIsFatal)
{
    // Each node has ~12MB of slab area (16MB minus the 4MB log area).
    std::vector<SlabGrant> grants;
    for (int i = 0; i < 24; ++i)
        grants.push_back(
            *controller.allocateSlab(PlacementRequest{.required = true}));
    EXPECT_THROW(controller.allocateSlab(
                     PlacementRequest{.required = true}),
                 FatalError);
    controller.freeSlab(grants.back());
    EXPECT_NO_THROW(
        controller.allocateSlab(PlacementRequest{.required = true}));
}

TEST_F(RackFixture, RemovedNodeReceivesNoSlabs)
{
    controller.removeNode(10);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(controller.allocateSlab(PlacementRequest{})->where.node,
                  11u);
}

TEST_F(RackFixture, NodeLookup)
{
    EXPECT_EQ(&controller.node(10), nodes[0].get());
    EXPECT_THROW(controller.node(99), FatalError);
}

TEST_F(RackFixture, LogReceiverDistributesLines)
{
    SlabGrant g =
        *controller.allocateSlab(PlacementRequest{.required = true});
    MemoryNode &node = controller.node(g.where.node);

    // Build a log with two runs targeting the slab.
    std::vector<std::uint8_t> lineA(cacheLineSize, 0x11);
    std::vector<std::uint8_t> lineB(2 * cacheLineSize, 0x22);
    std::vector<std::uint8_t> log;
    ClLogWriter writer(log);
    writer.appendRun(g.where.offset + 0, lineA.data(), 1);
    writer.appendRun(g.where.offset + 10 * cacheLineSize,
                     lineB.data(), 2);

    // Deliver the log bytes into the landing area (as RDMA would).
    node.store().write(node.logRegion().base, log.data(), log.size());
    LogReceiptStats stats = node.receiveLog(0, log.size());
    EXPECT_EQ(stats.runs, 2u);
    EXPECT_EQ(stats.lines, 3u);
    EXPECT_GT(stats.unpackNs, 0.0);
    EXPECT_EQ(node.linesReceived(), 3u);

    // The lines must be at their home addresses now.
    std::vector<std::uint8_t> check(cacheLineSize);
    node.store().read(g.where.offset, check.data(), check.size());
    EXPECT_EQ(check, lineA);
    std::vector<std::uint8_t> check2(2 * cacheLineSize);
    node.store().read(g.where.offset + 10 * cacheLineSize,
                      check2.data(), check2.size());
    EXPECT_EQ(check2, lineB);
}

TEST_F(RackFixture, SlabAreaDoesNotOverlapLogArea)
{
    MemoryNode &node = *nodes[0];
    auto slab = node.allocateSlab(1 * MiB);
    ASSERT_TRUE(slab.has_value());
    EXPECT_GE(*slab, node.logRegion().length);
}

TEST(MemoryNode, TinyNodeIsFatal)
{
    Fabric fabric;
    EXPECT_THROW(MemoryNode node(fabric, 1, 1 * MiB, 4 * MiB),
                 PanicError);
}

TEST(Controller, BadSlabSizeIsFatal)
{
    EXPECT_THROW(Controller c(100), PanicError);
    EXPECT_THROW(Controller c(0), PanicError);
}

} // namespace
} // namespace kona
