/**
 * @file
 * Tests for the pipelined asynchronous eviction engine: the
 * submit/poll/drain API, the depth-sweep content-equivalence oracle
 * (final remote bytes at depth N match the synchronous depth-1 engine,
 * including under injected drops and corruption), out-of-order batch
 * completion across nodes, NAK-retransmit of an in-flight ring slot,
 * the write-to-in-flight-page refetch fence, and ring-full
 * backpressure.
 */

#include <gtest/gtest.h>

#include "core/kona_runtime.h"
#include "net/fault_injector.h"

namespace kona {
namespace {

constexpr std::size_t regionPages = 512;

/** One self-contained rack + Kona stack at a given pipeline depth. */
struct AsyncRig
{
    explicit AsyncRig(std::size_t depth, std::size_t nodeCount = 1,
                      FaultInjector *injector = nullptr,
                      std::size_t pages = regionPages)
        : controller(1 * MiB)
    {
        if (injector != nullptr)
            fabric.setFaultInjector(injector);
        for (NodeId id = 1; id <= nodeCount; ++id) {
            nodes.push_back(
                std::make_unique<MemoryNode>(fabric, id, 128 * MiB));
            controller.registerNode(*nodes.back());
        }
        KonaConfig cfg;
        cfg.fpga.vfmemSize = 64 * MiB;
        cfg.fpga.fmemSize =
            std::max<std::size_t>(8 * MiB, 2 * pages * pageSize);
        cfg.hierarchy = HierarchyConfig::scaled();
        cfg.evict.pipelineDepth = depth;
        cfg.evict.pumpPeriod = ~std::size_t(0);   // manual only
        runtime = std::make_unique<KonaRuntime>(fabric, controller, 0,
                                                cfg);
        region = runtime->allocate(pages * pageSize, pageSize);
    }

    EvictionHandler &handler() { return runtime->evictionHandler(); }

    Addr vpn(std::size_t p) const { return pageNumber(region) + p; }

    std::vector<Addr>
    vpns(std::size_t from, std::size_t to) const
    {
        std::vector<Addr> out;
        for (std::size_t p = from; p < to; ++p)
            out.push_back(vpn(p));
        return out;
    }

    /** Value stored at page @p p, line @p l by dirtyAll(). */
    static std::uint64_t
    expected(std::size_t p, unsigned l)
    {
        return p * 1000 + l + 1;
    }

    /** Dirty @p linesPer lines in each of the first @p pages pages. */
    void
    dirtyAll(std::size_t pages, unsigned linesPer)
    {
        for (std::size_t p = 0; p < pages; ++p) {
            for (unsigned l = 0; l < linesPer; ++l) {
                runtime->store<std::uint64_t>(
                    region + p * pageSize + l * cacheLineSize,
                    expected(p, l));
            }
        }
        runtime->hierarchy().flushAll();
    }

    /** Read page @p p line @p l straight from its home node's store. */
    std::uint64_t
    remoteValue(std::size_t p, unsigned l)
    {
        RemoteLocation loc = runtime->fpga().translation().translate(
            region + p * pageSize + l * cacheLineSize);
        std::uint64_t value = 0;
        fabric.nodeStore(loc.node).read(loc.addr, &value,
                                        sizeof(value));
        return value;
    }

    Fabric fabric;
    Controller controller;
    std::vector<std::unique_ptr<MemoryNode>> nodes;
    std::unique_ptr<KonaRuntime> runtime;
    Addr region = 0;
};

// ---------------------------------------------------------------------
// Differential oracle: every depth lands byte-identical remote state.
// ---------------------------------------------------------------------

TEST(AsyncEviction, DepthSweepMatchesSynchronousContent)
{
    for (std::size_t depth : {1u, 2u, 4u, 8u}) {
        AsyncRig rig(depth);
        rig.dirtyAll(regionPages, 4);
        SimClock clock;
        rig.handler().evictBatch(rig.vpns(0, regionPages), clock);

        for (std::size_t p = 0; p < regionPages; ++p) {
            for (unsigned l = 0; l < 4; ++l) {
                ASSERT_EQ(rig.remoteValue(p, l),
                          AsyncRig::expected(p, l))
                    << "depth " << depth << " page " << p << " line "
                    << l;
            }
            EXPECT_FALSE(rig.runtime->fpga().pageResident(rig.vpn(p)));
        }
        EXPECT_EQ(rig.handler().pagesEvicted(), regionPages);
        EXPECT_EQ(rig.handler().dirtyLinesWritten(),
                  regionPages * 4u);
        EXPECT_EQ(rig.handler().inflightShipments(), 0u);
    }
}

TEST(AsyncEviction, DepthSweepMatchesUnderDropsAndCorruption)
{
    // Drops and DMA corruption force retransmits; the retry loop must
    // still land every line exactly, at every depth.
    for (std::size_t depth : {1u, 2u, 4u, 8u}) {
        FaultInjector injector(0xfab);
        AsyncRig rig(depth, 1, &injector);
        rig.dirtyAll(64, 2);
        // Arm the faults only for the eviction phase; the setup
        // stores above fetch pages over the same (clean) fabric.
        injector.profile(1).dropProbability = 0.2;
        injector.profile(1).corruptProbability = 0.2;
        SimClock clock;
        rig.handler().evictBatch(rig.vpns(0, 64), clock);

        for (std::size_t p = 0; p < 64; ++p) {
            for (unsigned l = 0; l < 2; ++l) {
                ASSERT_EQ(rig.remoteValue(p, l),
                          AsyncRig::expected(p, l))
                    << "depth " << depth << " page " << p << " line "
                    << l;
            }
        }
        EXPECT_EQ(rig.handler().pagesEvicted(), 64u);
    }
}

// ---------------------------------------------------------------------
// submit/poll: out-of-order completion across destination nodes.
// ---------------------------------------------------------------------

TEST(AsyncEviction, OutOfOrderBatchCompletion)
{
    // Two memory nodes; the 1 MiB slabs alternate between them, so the
    // region's first 256 pages and last 256 pages live on different
    // nodes. A huge batch to one node followed by a tiny batch to the
    // other completes in reverse submission order.
    AsyncRig rig(4, 2);
    rig.dirtyAll(regionPages, 64);

    RemoteLocation first =
        rig.runtime->fpga().translation().translate(rig.region);
    RemoteLocation last =
        rig.runtime->fpga().translation().translate(
            rig.region + (regionPages - 1) * pageSize);
    ASSERT_NE(first.node, last.node);

    SimClock clock;
    BatchTicket big =
        rig.handler().submit({rig.vpns(0, 256)}, clock);
    BatchTicket small =
        rig.handler().submit({rig.vpns(256, 257)}, clock);
    ASSERT_TRUE(big.valid());
    ASSERT_TRUE(small.valid());
    EXPECT_FALSE(rig.handler().complete(big));
    EXPECT_FALSE(rig.handler().complete(small));

    // Walk sim time forward: the tiny batch (submitted second) must
    // finalize while the big one is still in flight.
    while (!rig.handler().complete(small)) {
        clock.advance(1000);
        rig.handler().poll(clock);
    }
    EXPECT_FALSE(rig.handler().complete(big));
    EXPECT_GT(rig.handler().inflightShipments(), 0u);

    rig.handler().drain(clock);
    EXPECT_TRUE(rig.handler().complete(big));
    EXPECT_EQ(rig.handler().pagesEvicted(), 257u);
    EXPECT_EQ(rig.remoteValue(256, 0), AsyncRig::expected(256, 0));
    EXPECT_EQ(rig.remoteValue(0, 63), AsyncRig::expected(0, 63));
}

// ---------------------------------------------------------------------
// NAK-retransmit of an in-flight ring slot.
// ---------------------------------------------------------------------

TEST(AsyncEviction, NakRetransmitsInflightSlot)
{
    // Half the transfers are corrupted end-host-side: the receiver's
    // CRC pass NAKs those logs and the engine retransmits the same ring
    // slot until a clean copy lands.
    FaultInjector injector(0xbad5eed);
    AsyncRig rig(4, 1, &injector);
    rig.dirtyAll(32, 1);
    injector.profile(1).corruptProbability = 0.5;
    SimClock clock;
    // One submit per page: 32 independent shipments through the ring,
    // about half of which are corrupted on their first send.
    for (std::size_t p = 0; p < 32; ++p)
        rig.handler().submit({rig.vpns(p, p + 1)}, clock);
    rig.handler().drain(clock);

    EXPECT_GE(rig.handler().checksumNaks(), 1u);
    EXPECT_GE(rig.handler().logRetransmits(), 1u);
    for (std::size_t p = 0; p < 32; ++p)
        ASSERT_EQ(rig.remoteValue(p, 0), AsyncRig::expected(p, 0));
    EXPECT_EQ(rig.handler().pagesEvicted(), 32u);
}

// ---------------------------------------------------------------------
// Write to an in-flight page: fence, re-dirty, refetch.
// ---------------------------------------------------------------------

TEST(AsyncEviction, WriteToInflightPageRequeues)
{
    AsyncRig rig(4);
    rig.dirtyAll(1, 1);
    SimClock clock;
    BatchTicket t = rig.handler().submit({rig.vpns(0, 1)}, clock);
    ASSERT_TRUE(t.valid());
    ASSERT_FALSE(rig.handler().complete(t));
    // The page stays resident and fenced while its log is on the wire.
    EXPECT_TRUE(rig.runtime->fpga().pageResident(rig.vpn(0)));
    EXPECT_TRUE(rig.runtime->fpga().evictionInFlight(rig.vpn(0)));

    // Write a different line while in flight: the shipped snapshot is
    // now stale and finalize must re-queue the page, not drop it.
    rig.runtime->store<std::uint64_t>(
        rig.region + 7 * cacheLineSize, 0xabcdef);
    rig.runtime->hierarchy().flushAll();

    rig.handler().drain(clock);
    EXPECT_EQ(rig.handler().inflightRefetches(), 1u);
    EXPECT_FALSE(rig.runtime->fpga().evictionInFlight(rig.vpn(0)));
    // Both the original line and the racing write landed remotely.
    EXPECT_EQ(rig.remoteValue(0, 0), AsyncRig::expected(0, 0));
    EXPECT_EQ(rig.remoteValue(0, 7), 0xabcdefu);
}

TEST(AsyncEviction, SubmitOfInflightPageStallsThenShipsFreshData)
{
    // A second submit of a page whose log is still in flight must wait
    // for the first shipment (counted) instead of double-shipping.
    AsyncRig rig(4);
    rig.dirtyAll(1, 1);
    SimClock clock;
    rig.handler().submit({rig.vpns(0, 1)}, clock);
    rig.runtime->store<std::uint64_t>(
        rig.region + 3 * cacheLineSize, 42);
    rig.runtime->hierarchy().flushAll();

    rig.handler().submit({rig.vpns(0, 1)}, clock);
    EXPECT_GE(rig.handler().pageConflictStalls(), 1u);
    rig.handler().drain(clock);
    EXPECT_EQ(rig.remoteValue(0, 0), AsyncRig::expected(0, 0));
    EXPECT_EQ(rig.remoteValue(0, 3), 42u);
}

// ---------------------------------------------------------------------
// Ring-full backpressure.
// ---------------------------------------------------------------------

TEST(AsyncEviction, RingFullBackpressureBlocksAndCounts)
{
    // Depth 1: one landing slot per node, so a second submit while the
    // first shipment is in flight must block on the ring.
    AsyncRig shallow(1);
    shallow.dirtyAll(2, 1);
    SimClock clock;
    shallow.handler().submit({shallow.vpns(0, 1)}, clock);
    shallow.handler().submit({shallow.vpns(1, 2)}, clock);
    EXPECT_GE(shallow.handler().ringFullStalls(), 1u);
    shallow.handler().drain(clock);
    EXPECT_EQ(shallow.handler().pagesEvicted(), 2u);

    // Depth 4: both shipments fit the ring; no stall.
    AsyncRig deep(4);
    deep.dirtyAll(2, 1);
    SimClock clock2;
    deep.handler().submit({deep.vpns(0, 1)}, clock2);
    deep.handler().submit({deep.vpns(1, 2)}, clock2);
    EXPECT_EQ(deep.handler().ringFullStalls(), 0u);
    deep.handler().drain(clock2);
    EXPECT_EQ(deep.handler().pagesEvicted(), 2u);
}

// ---------------------------------------------------------------------
// Pipelining pays: deeper rings beat the synchronous engine.
// ---------------------------------------------------------------------

TEST(AsyncEviction, DeepPipelineBeatsSynchronous)
{
    // Dirty-heavy workload: with every page fully dirty the receiver's
    // unpack dominates, and overlapping it with the next batch's pack
    // and wire time must win by a wide margin. Enough pages for the
    // pipeline to reach steady state past the fill/drain edges.
    constexpr std::size_t pages = 2048;
    auto evictAll = [](std::size_t depth) {
        AsyncRig rig(depth, 1, nullptr, pages);
        rig.dirtyAll(pages, 64);
        SimClock clock;
        rig.handler().evictBatch(rig.vpns(0, pages), clock);
        return static_cast<double>(clock.now());
    };
    double sync = evictAll(1);
    double deep = evictAll(4);
    EXPECT_GT(sync / deep, 1.3);
}

} // namespace
} // namespace kona
