/**
 * @file
 * Exact-accounting regression tests: scripted scenarios whose fetch,
 * fault, eviction and wire-byte counts can be predicted precisely.
 * These pin down the cost model so calibration changes that alter
 * *what happens* (not just how long it takes) fail loudly.
 */

#include <gtest/gtest.h>

#include "core/kona_runtime.h"
#include "core/vm_runtime.h"
#include "rack/cl_log.h"

namespace kona {
namespace {

struct Stack
{
    Stack() : controller(1 * MiB)
    {
        node = std::make_unique<MemoryNode>(fabric, 1, 128 * MiB);
        controller.registerNode(*node);
    }

    KonaRuntime
    makeKona(std::size_t fmem = 8 * MiB)
    {
        KonaConfig cfg;
        cfg.fpga.vfmemSize = 32 * MiB;
        cfg.fpga.fmemSize = fmem;
        cfg.hierarchy = HierarchyConfig::scaled();
        cfg.evict.pumpPeriod = ~std::size_t(0);
        return KonaRuntime(fabric, controller, 0, cfg);
    }

    VmRuntime
    makeVm(std::size_t cachePages = 1024)
    {
        VmConfig cfg;
        cfg.localCachePages = cachePages;
        cfg.hierarchy = HierarchyConfig::scaled();
        return VmRuntime(fabric, controller, 0, cfg);
    }

    Fabric fabric;
    Controller controller;
    std::unique_ptr<MemoryNode> node;
};

TEST(Accounting, KonaOneFetchPerColdPage)
{
    Stack stack;
    KonaRuntime kona = stack.makeKona();
    Addr a = kona.allocate(10 * pageSize, pageSize);
    for (int p = 0; p < 10; ++p)
        kona.store<std::uint64_t>(a + p * pageSize, p);
    EXPECT_EQ(kona.stats().remoteFetches, 10u);
    // Re-touching costs nothing remote.
    for (int p = 0; p < 10; ++p)
        kona.store<std::uint64_t>(a + p * pageSize, p + 1);
    EXPECT_EQ(kona.stats().remoteFetches, 10u);
}

TEST(Accounting, KonaDirtyLinesExactlyTracked)
{
    Stack stack;
    KonaRuntime kona = stack.makeKona();
    Addr a = kona.allocate(4 * pageSize, pageSize);
    // Page 0: 1 line; page 1: 2 lines; page 2: read only; page 3:
    // one 8-byte store that straddles two lines.
    kona.store<std::uint64_t>(a, 1);
    kona.store<std::uint64_t>(a + pageSize, 1);
    kona.store<std::uint64_t>(a + pageSize + 640, 2);
    (void)kona.load<std::uint64_t>(a + 2 * pageSize);
    kona.write(a + 3 * pageSize + 60, "12345678", 8);
    kona.writebackAll();

    RuntimeStats stats = kona.stats();
    EXPECT_EQ(stats.dirtyLinesWritten, 1u + 2u + 0u + 2u);
    EXPECT_EQ(stats.silentEvictions, 1u);
    EXPECT_EQ(stats.pagesEvicted, 4u);
}

TEST(Accounting, KonaWireBytesAreLinesPlusHeaders)
{
    Stack stack;
    KonaRuntime kona = stack.makeKona();
    Addr a = kona.allocate(8 * pageSize, pageSize);
    // One isolated dirty line per page: 8 runs of 1 line.
    for (int p = 0; p < 8; ++p)
        kona.store<std::uint64_t>(a + p * pageSize, p);
    kona.writebackAll();
    RuntimeStats stats = kona.stats();
    std::size_t headerBytes = 8 * sizeof(ClLogEntryHeader);
    EXPECT_EQ(stats.evictionBytesOnWire,
              8 * cacheLineSize + headerBytes);
}

TEST(Accounting, KonaContiguousRunsShareOneHeader)
{
    Stack stack;
    KonaRuntime kona = stack.makeKona();
    Addr a = kona.allocate(pageSize, pageSize);
    // 4 contiguous lines: one run, one header.
    std::vector<std::uint8_t> buf(4 * cacheLineSize, 0x3c);
    kona.write(a, buf.data(), buf.size());
    kona.writebackAll();
    RuntimeStats stats = kona.stats();
    EXPECT_EQ(stats.evictionBytesOnWire,
              4 * cacheLineSize + sizeof(ClLogEntryHeader));
}

TEST(Accounting, KonaFmemHitsVsFetches)
{
    Stack stack;
    KonaRuntime kona = stack.makeKona();
    Addr a = kona.allocate(pageSize, pageSize);
    // Touch 64 distinct lines of one page. The first line fetches
    // the page; the others hit FMem after missing the CPU caches?
    // No: the CPU caches absorb them only after first touch, so all
    // 64 misses reach the FPGA; 1 fetch + 63 FMem hits.
    for (unsigned l = 0; l < 64; ++l)
        kona.store<std::uint64_t>(a + l * cacheLineSize, l);
    EXPECT_EQ(kona.fpga().remoteFetches(), 1u);
    EXPECT_EQ(kona.fpga().fmemHits(), 63u);
}

TEST(Accounting, VmFaultArithmetic)
{
    Stack stack;
    VmRuntime vm = stack.makeVm();
    Addr a = vm.allocate(6 * pageSize, pageSize);
    // 3 pages read then written; 3 pages only read.
    for (int p = 0; p < 3; ++p) {
        (void)vm.load<std::uint64_t>(a + p * pageSize);
        vm.store<std::uint64_t>(a + p * pageSize, p);
    }
    for (int p = 3; p < 6; ++p)
        (void)vm.load<std::uint64_t>(a + p * pageSize);

    RuntimeStats stats = vm.stats();
    EXPECT_EQ(stats.majorFaults, 6u);
    EXPECT_EQ(stats.minorFaults, 3u);
    EXPECT_EQ(stats.tlbShootdowns, 0u);   // no eviction yet

    vm.writebackAll();
    stats = vm.stats();
    EXPECT_EQ(stats.pagesEvicted, 6u);
    EXPECT_EQ(stats.tlbShootdowns, 6u);
    EXPECT_EQ(stats.silentEvictions, 3u);   // the read-only pages
    EXPECT_EQ(stats.evictionBytesOnWire, 3u * pageSize);
}

TEST(Accounting, VmRefaultAfterEviction)
{
    Stack stack;
    VmRuntime vm = stack.makeVm(/*cachePages=*/2);
    Addr a = vm.allocate(3 * pageSize, pageSize);
    vm.store<std::uint64_t>(a, 1);                  // fault p0
    vm.store<std::uint64_t>(a + pageSize, 2);       // fault p1
    vm.store<std::uint64_t>(a + 2 * pageSize, 3);   // fault p2, evict p0
    EXPECT_EQ(vm.stats().pagesEvicted, 1u);
    vm.store<std::uint64_t>(a, 4);                  // refault p0
    RuntimeStats stats = vm.stats();
    EXPECT_EQ(stats.majorFaults, 4u);
    EXPECT_EQ(stats.minorFaults, 4u);
    EXPECT_EQ(vm.load<std::uint64_t>(a), 4u);
}

TEST(Accounting, FabricCountsEveryTransfer)
{
    Stack stack;
    KonaRuntime kona = stack.makeKona();
    auto before = stack.fabric.bytesTransferred();
    Addr a = kona.allocate(2 * pageSize, pageSize);
    kona.store<std::uint64_t>(a, 1);   // 1 page fetch
    EXPECT_EQ(stack.fabric.bytesTransferred(), before + pageSize);
    kona.writebackAll();   // 1 line + header in a CL log
    EXPECT_EQ(stack.fabric.bytesTransferred(),
              before + pageSize + cacheLineSize +
                  sizeof(ClLogEntryHeader));
}

TEST(Accounting, ElapsedNeverDecreases)
{
    Stack stack;
    KonaRuntime kona = stack.makeKona(256 * KiB);
    Addr a = kona.allocate(2 * MiB, pageSize);
    Tick last = 0;
    for (Addr off = 0; off < 2 * MiB; off += pageSize) {
        kona.store<std::uint64_t>(a + off, off);
        Tick now = kona.elapsed();
        ASSERT_GE(now, last);
        last = now;
    }
}

TEST(Accounting, ReadWriteByteCounters)
{
    Stack stack;
    KonaRuntime kona = stack.makeKona();
    Addr a = kona.allocate(1000);
    std::vector<std::uint8_t> buf(123, 1);
    kona.write(a, buf.data(), 123);
    kona.write(a + 200, buf.data(), 77);
    kona.read(a, buf.data(), 50);
    RuntimeStats stats = kona.stats();
    EXPECT_EQ(stats.writes, 2u);
    EXPECT_EQ(stats.reads, 1u);
    EXPECT_EQ(stats.bytesWritten, 200u);
    EXPECT_EQ(stats.bytesRead, 50u);
}

TEST(Accounting, PteUpdatesOnlyAtSetup)
{
    // Kona's page table is written at slab-mapping time and never
    // again — the no-TLB-shootdown property in numbers.
    Stack stack;
    KonaRuntime kona = stack.makeKona();
    Addr a = kona.allocate(1 * MiB, pageSize);
    auto updatesAfterSetup = kona.pageTable().pteUpdates();
    for (Addr off = 0; off < 1 * MiB; off += pageSize)
        kona.store<std::uint64_t>(a + off, off);
    kona.writebackAll();
    EXPECT_EQ(kona.pageTable().pteUpdates(), updatesAfterSetup);
}

} // namespace
} // namespace kona
