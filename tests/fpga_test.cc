/**
 * @file
 * Unit tests for src/fpga: FMem tag management, remote translation
 * (incl. replicas and fail-over), and the CoherentFpga's two hardware
 * primitives — serving line requests and tracking writebacks.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fpga/coherent_fpga.h"
#include "rack/controller.h"

namespace kona {
namespace {

TEST(FMemCache, InsertLookupRemove)
{
    FMemCache fmem(16 * pageSize, 4);   // 4 sets x 4 ways
    EXPECT_EQ(fmem.numSets(), 4u);
    EXPECT_FALSE(fmem.lookup(100).has_value());
    std::size_t frame = fmem.insert(100);
    EXPECT_LT(frame, fmem.frames());
    auto hit = fmem.lookup(100);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, frame);
    fmem.remove(100);
    EXPECT_FALSE(fmem.contains(100));
    EXPECT_TRUE(fmem.checkInvariants());
}

TEST(FMemCache, VictimOnlyWhenSetFull)
{
    FMemCache fmem(8 * pageSize, 4);   // 2 sets x 4 ways
    // Pages 0,2,4,6 map to set 0.
    for (Addr vpn : {0, 2, 4, 6}) {
        EXPECT_FALSE(fmem.victimFor(vpn).has_value());
        fmem.insert(vpn);
    }
    auto victim = fmem.victimFor(8);   // set 0 again
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->vfmemPage, 0u);   // LRU
    // Touch 0 to refresh LRU: the victim changes.
    fmem.lookup(0);
    victim = fmem.victimFor(8);
    ASSERT_TRUE(victim.has_value());
    EXPECT_EQ(victim->vfmemPage, 2u);
    // Other set unaffected.
    EXPECT_FALSE(fmem.victimFor(1).has_value());
}

TEST(FMemCache, InsertIntoFullSetIsFatal)
{
    FMemCache fmem(4 * pageSize, 4);   // 1 set
    for (Addr vpn = 0; vpn < 4; ++vpn)
        fmem.insert(vpn);
    EXPECT_THROW(fmem.insert(4), PanicError);
}

/**
 * Collect overOccupiedVictims through the fixed-buffer protocol the
 * way EvictionHandler::pump does: count, size, re-ask.
 */
std::vector<FMemCache::Victim>
victimsOf(const FMemCache &fmem, std::size_t freeWays)
{
    std::size_t owed = fmem.overOccupiedVictims(freeWays, nullptr, 0);
    std::vector<FMemCache::Victim> out(owed);
    if (owed > 0)
        EXPECT_EQ(fmem.overOccupiedVictims(freeWays, out.data(),
                                           out.size()),
                  owed);
    return out;
}

TEST(FMemCache, OverOccupiedVictims)
{
    FMemCache fmem(8 * pageSize, 4);
    for (Addr vpn : {0, 2, 4, 6})
        fmem.insert(vpn);   // set 0 full
    fmem.insert(1);         // set 1 one way used
    auto victims = victimsOf(fmem, 1);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0].vfmemPage, 0u);
    victims = victimsOf(fmem, 2);
    // Set 0 needs 2 free ways -> 2 victims; set 1 has 3 free already.
    EXPECT_EQ(victims.size(), 2u);
}

TEST(FMemCache, OverOccupiedVictimsSkipsFencedWays)
{
    FMemCache fmem(8 * pageSize, 4);   // 2 sets x 4 ways
    for (Addr vpn : {0, 2, 4, 6})
        fmem.insert(vpn);   // set 0 full, LRU order 6,4,2,0 (MRU first)
    for (Addr vpn : {1, 3, 5, 7})
        fmem.insert(vpn);   // set 1 full too

    // Fence set 0's two LRU ways (0 and 2): background eviction must
    // look past them and pick the next-oldest unfenced way.
    fmem.setEvictionInFlight(0, true);
    fmem.setEvictionInFlight(2, true);
    auto victims = victimsOf(fmem, 1);
    ASSERT_EQ(victims.size(), 2u);   // one per full set
    EXPECT_EQ(victims[0].vfmemPage, 4u);   // set 0: oldest unfenced
    EXPECT_EQ(victims[1].vfmemPage, 1u);   // set 1: plain LRU

    // Fence ALL of set 0: the pump gets nothing from that set (every
    // candidate is already on its way out), and set 1 is unaffected.
    fmem.setEvictionInFlight(4, true);
    fmem.setEvictionInFlight(6, true);
    victims = victimsOf(fmem, 2);
    ASSERT_EQ(victims.size(), 2u);
    EXPECT_EQ(victims[0].vfmemPage, 1u);
    EXPECT_EQ(victims[1].vfmemPage, 3u);

    // Fence every way of every set: nothing to pump at all (and the
    // count-first path returns an empty vector without reserving).
    for (Addr vpn : {1, 3, 5, 7})
        fmem.setEvictionInFlight(vpn, true);
    EXPECT_TRUE(victimsOf(fmem, 4).empty());

    // Unfencing restores eligibility.
    fmem.setEvictionInFlight(0, false);
    victims = victimsOf(fmem, 1);
    ASSERT_EQ(victims.size(), 1u);
    EXPECT_EQ(victims[0].vfmemPage, 0u);
    EXPECT_TRUE(fmem.checkInvariants());
}

TEST(FMemCache, ResidentPagesEnumeration)
{
    FMemCache fmem(16 * pageSize, 4);
    fmem.insert(3);
    fmem.insert(7);
    auto pages = fmem.residentPages();
    EXPECT_EQ(pages.size(), 2u);
    EXPECT_EQ(fmem.pagesResident(), 2u);
}

TEST(FMemCache, RandomTrafficKeepsInvariants)
{
    FMemCache fmem(64 * pageSize, 4);
    Rng rng(21);
    std::vector<Addr> resident;
    for (int step = 0; step < 3000; ++step) {
        Addr vpn = rng.below(512);
        if (fmem.contains(vpn)) {
            if (rng.chance(0.3)) {
                fmem.remove(vpn);
                resident.erase(std::find(resident.begin(),
                                         resident.end(), vpn));
            } else {
                fmem.lookup(vpn);
            }
        } else {
            auto victim = fmem.victimFor(vpn);
            if (victim.has_value()) {
                fmem.remove(victim->vfmemPage);
                resident.erase(std::find(resident.begin(),
                                         resident.end(),
                                         victim->vfmemPage));
            }
            fmem.insert(vpn);
            resident.push_back(vpn);
        }
    }
    EXPECT_TRUE(fmem.checkInvariants());
    EXPECT_EQ(fmem.pagesResident(), resident.size());
}

TEST(RemoteTranslation, RangeLookup)
{
    RemoteTranslation xlate;
    SlabGrant g;
    g.slab = 1;
    g.where = {5, 0x8000};
    g.size = 0x4000;
    g.regionKey = 9;
    xlate.addSlab(0x100000, g);

    RemoteLocation loc = xlate.translate(0x100000 + 0x123);
    EXPECT_EQ(loc.node, 5u);
    EXPECT_EQ(loc.addr, 0x8123u);
    EXPECT_EQ(loc.regionKey, 9u);
    EXPECT_TRUE(xlate.mapped(0x100000 + 0x3fff));
    EXPECT_FALSE(xlate.mapped(0x100000 + 0x4000));
    EXPECT_FALSE(xlate.mapped(0xff));
    EXPECT_THROW(xlate.translate(0x200000), FatalError);
}

TEST(RemoteTranslation, ReplicasAndPromotion)
{
    RemoteTranslation xlate;
    SlabGrant primary{1, {5, 0x0}, 0x1000, 1};
    SlabGrant replica{2, {6, 0x9000}, 0x1000, 2};
    xlate.addSlab(0, primary, {replica});

    auto all = xlate.translateAll(0x10);
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(all[0].node, 5u);
    EXPECT_EQ(all[1].node, 6u);
    EXPECT_EQ(all[1].addr, 0x9010u);

    xlate.promoteReplica(0x10, 0);
    EXPECT_EQ(xlate.translate(0x10).node, 6u);
}

/** Full FPGA stack over a one-node rack. */
class FpgaFixture : public ::testing::Test
{
  protected:
    FpgaFixture() : controller(1 * MiB)
    {
        node = std::make_unique<MemoryNode>(fabric, 7, 32 * MiB);
        controller.registerNode(*node);
        FpgaConfig cfg;
        cfg.vfmemBase = 0x400000000000ULL;
        cfg.vfmemSize = 8 * MiB;
        cfg.fmemSize = 1 * MiB;   // 256 frames
        fpga = std::make_unique<CoherentFpga>(fabric, 0, cfg);

        // Map four contiguous slabs at the base of VFMem.
        base = cfg.vfmemBase;
        for (int i = 0; i < 4; ++i) {
            SlabGrant g = *controller.allocateSlab(
                PlacementRequest{.required = true});
            fpga->translation().addSlab(base + i * g.size, g);
            if (i == 0)
                slab = g;
        }
    }

    Fabric fabric;
    Controller controller;
    std::unique_ptr<MemoryNode> node;
    std::unique_ptr<CoherentFpga> fpga;
    Addr base = 0;
    SlabGrant slab;
};

TEST_F(FpgaFixture, ServeLineFetchesThenHits)
{
    SimClock clock;
    EXPECT_FALSE(fpga->pageResident(pageNumber(base)));
    ServeStatus s1 = fpga->serveLine(base, AccessType::Read, clock);
    EXPECT_EQ(s1, ServeStatus::RemoteFetch);
    EXPECT_TRUE(fpga->pageResident(pageNumber(base)));
    Tick afterFetch = clock.now();
    EXPECT_GT(afterFetch, 2000u);   // an RDMA page fetch is ~3us

    ServeStatus s2 = fpga->serveLine(base + 64, AccessType::Read,
                                     clock);
    EXPECT_EQ(s2, ServeStatus::FMemHit);
    EXPECT_LT(clock.now() - afterFetch, 500u);   // NUMA-ish latency
    EXPECT_EQ(fpga->remoteFetches(), 1u);
}

TEST_F(FpgaFixture, FunctionalReadSeesRemoteData)
{
    // Seed bytes directly on the memory node, then read via VFMem.
    std::uint64_t magic = 0xfeedface;
    node->store().write(slab.where.offset + 128, &magic,
                        sizeof(magic));
    SimClock clock;
    fpga->serveLine(base + 128, AccessType::Read, clock);
    std::uint64_t check = 0;
    fpga->readBytes(base + 128, &check, sizeof(check));
    EXPECT_EQ(check, magic);
}

TEST_F(FpgaFixture, WritebackObservationMarksDirtyLines)
{
    SimClock clock;
    fpga->serveLine(base, AccessType::Write, clock);
    EXPECT_EQ(fpga->dirtyMask(pageNumber(base)), 0u);
    fpga->onWriteback(base + 2 * cacheLineSize);
    fpga->onWriteback(base + 5 * cacheLineSize);
    EXPECT_EQ(fpga->dirtyMask(pageNumber(base)),
              (1ULL << 2) | (1ULL << 5));
    EXPECT_EQ(fpga->writebacksObserved(), 2u);
    fpga->clearDirty(pageNumber(base));
    EXPECT_EQ(fpga->dirtyMask(pageNumber(base)), 0u);
}

TEST_F(FpgaFixture, WritebacksOutsideVFMemIgnored)
{
    fpga->onWriteback(0x1234);   // a CMem address
    EXPECT_EQ(fpga->writebacksObserved(), 0u);
}

TEST_F(FpgaFixture, EvictionCallbackFiresOnSetConflict)
{
    // FMem: 1MB 4-way => 64 sets. Pages vpn, vpn+64, ... collide.
    SimClock clock;
    int evictions = 0;
    fpga->setEvictionCallback(
        [&](const FMemCache::Victim &victim, SimClock &cb) {
            (void)cb;
            ++evictions;
            fpga->dropPage(victim.vfmemPage);
        });
    Addr vpn0 = pageNumber(base);
    std::size_t sets = fpga->fmem().numSets();
    for (std::size_t i = 0; i < 5; ++i) {
        Addr addr = base + i * sets * pageSize;   // same set each time
        fpga->serveLine(addr, AccessType::Read, clock);
    }
    EXPECT_EQ(evictions, 1);
    EXPECT_FALSE(fpga->pageResident(vpn0));
}

TEST_F(FpgaFixture, PrefetchNextPage)
{
    FpgaConfig cfg = fpga->config();
    cfg.prefetchPolicy = "next:1";
    CoherentFpga pf(fabric, 2, cfg);
    pf.translation().addSlab(cfg.vfmemBase, slab);

    SimClock clock;
    pf.serveLine(cfg.vfmemBase, AccessType::Read, clock);
    EXPECT_TRUE(pf.pageResident(pageNumber(cfg.vfmemBase) + 1));
    EXPECT_EQ(pf.prefetches(), 1u);
    EXPECT_GT(pf.backgroundTime(), 0u);   // charged off critical path
}

TEST_F(FpgaFixture, FailoverToReplica)
{
    // Second node with a replica of the slab.
    MemoryNode node2(fabric, 8, 32 * MiB);
    controller.registerNode(node2);
    SlabGrant replica =
        *controller.allocateSlab(PlacementRequest{.required = true});
    ASSERT_EQ(replica.where.node, 8u);

    FpgaConfig cfg = fpga->config();
    CoherentFpga ha(fabric, 3, cfg);
    ha.translation().addSlab(cfg.vfmemBase, slab, {replica});

    // Seed distinct data on the replica so we can see who served it.
    std::uint32_t fromReplica = 0x5ec0dda;
    node2.store().write(replica.where.offset, &fromReplica,
                        sizeof(fromReplica));

    fabric.setNodeDown(7, true);
    SimClock clock;
    ServeStatus s = ha.serveLine(cfg.vfmemBase, AccessType::Read,
                                 clock);
    EXPECT_EQ(s, ServeStatus::RemoteFetch);
    std::uint32_t check = 0;
    ha.readBytes(cfg.vfmemBase, &check, sizeof(check));
    EXPECT_EQ(check, fromReplica);
    // The replica was promoted to primary.
    EXPECT_EQ(ha.translation().translate(cfg.vfmemBase).node, 8u);
    fabric.setNodeDown(7, false);
}

TEST_F(FpgaFixture, AllReplicasDownIsUnavailable)
{
    fabric.setNodeDown(7, true);
    SimClock clock;
    ServeStatus s = fpga->serveLine(base, AccessType::Read, clock);
    EXPECT_EQ(s, ServeStatus::RemoteUnavailable);
    EXPECT_EQ(fpga->fetchFailures(), 1u);
    fabric.setNodeDown(7, false);
    EXPECT_EQ(fpga->serveLine(base, AccessType::Read, clock),
              ServeStatus::RemoteFetch);
}

TEST_F(FpgaFixture, WriteBytesRoundTrip)
{
    SimClock clock;
    fpga->serveLine(base + pageSize, AccessType::Write, clock);
    std::vector<std::uint8_t> data(300);
    Rng rng(31);
    for (auto &b : data)
        b = static_cast<std::uint8_t>(rng.next());
    fpga->writeBytes(base + pageSize + 50, data.data(), data.size());
    std::vector<std::uint8_t> check(data.size());
    fpga->readBytes(base + pageSize + 50, check.data(), check.size());
    EXPECT_EQ(check, data);
}

TEST_F(FpgaFixture, NonResidentFunctionalAccessIsFatal)
{
    std::uint8_t b = 0;
    EXPECT_THROW(fpga->readBytes(base, &b, 1), PanicError);
}

} // namespace
} // namespace kona
