/**
 * @file
 * Tests for src/policy: spec parsing (malformed specs rejected
 * loudly), per-policy victim sequences checked against a reference
 * model on seeded traces, placement determinism and request
 * semantics (avoid/pinTo/required), TieringEngine promote/demote
 * mechanics, and a KonaRuntime integration run with a shifting
 * working set plus a no-lost-pages content oracle.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/kona_runtime.h"
#include "fpga/fmem_cache.h"
#include "policy/placement_policy.h"
#include "policy/tiering_engine.h"
#include "policy/victim_policy.h"
#include "rack/controller.h"

namespace kona {
namespace {

// --- spec parsing ----------------------------------------------------

TEST(VictimSpec, KnownPoliciesParse)
{
    EXPECT_EQ(makeVictimPolicy("lru")->name(), "lru");
    EXPECT_EQ(makeVictimPolicy("")->name(), "lru");
    EXPECT_EQ(makeVictimPolicy("lfu")->name(), "lfu");
    EXPECT_EQ(makeVictimPolicy("scan")->name(), "scan:2");
    EXPECT_EQ(makeVictimPolicy("scan:5")->name(), "scan:5");
    EXPECT_EQ(makeVictimPolicy("dirty")->name(), "dirty");
    EXPECT_TRUE(makeVictimPolicy("dirty")->wantsDirty());
    EXPECT_FALSE(makeVictimPolicy("lru")->wantsDirty());
    for (const std::string &name : victimPolicyNames()) {
        EXPECT_TRUE(knownVictimPolicy(name));
        EXPECT_NO_THROW(makeVictimPolicy(name));
    }
}

TEST(VictimSpec, MalformedIsFatal)
{
    EXPECT_THROW(makeVictimPolicy("bogus"), FatalError);
    EXPECT_THROW(makeVictimPolicy("scan:0"), FatalError);
    EXPECT_THROW(makeVictimPolicy("scan:abc"), FatalError);
    EXPECT_THROW(makeVictimPolicy("scan:"), FatalError);
    EXPECT_THROW(makeVictimPolicy("lru:3"), FatalError);
    EXPECT_THROW(makeVictimPolicy("dirty:1"), FatalError);
    EXPECT_FALSE(knownVictimPolicy("bogus"));
    EXPECT_FALSE(knownVictimPolicy("scan:0"));
    EXPECT_FALSE(knownVictimPolicy("lfu:2"));
    // The cache constructor routes through the same parser.
    EXPECT_THROW(FMemCache(4 * pageSize, 4, {}, "bogus"), FatalError);
}

TEST(PlacementSpec, KnownPoliciesParse)
{
    EXPECT_EQ(makePlacementPolicy("free")->name(), "free");
    EXPECT_EQ(makePlacementPolicy("")->name(), "free");
    EXPECT_EQ(makePlacementPolicy("first")->name(), "first");
    EXPECT_EQ(makePlacementPolicy("rr")->name(), "rr");
    EXPECT_EQ(makePlacementPolicy("health")->name(), "health");
    for (const std::string &name : placementPolicyNames()) {
        EXPECT_TRUE(knownPlacementPolicy(name));
        EXPECT_NO_THROW(makePlacementPolicy(name));
    }
}

TEST(PlacementSpec, MalformedIsFatal)
{
    EXPECT_THROW(makePlacementPolicy("bogus"), FatalError);
    EXPECT_THROW(makePlacementPolicy("free:2"), FatalError);
    EXPECT_THROW(makePlacementPolicy("rr:1"), FatalError);
    EXPECT_FALSE(knownPlacementPolicy("bogus"));
    EXPECT_FALSE(knownPlacementPolicy("rr:1"));
    EXPECT_THROW(Controller(1 * MiB, {}, "bogus"), FatalError);
    Controller controller(1 * MiB);
    EXPECT_THROW(controller.setPlacementPolicy("bogus"), FatalError);
    EXPECT_EQ(controller.placementPolicyName(), "free");
    controller.setPlacementPolicy("rr");
    EXPECT_EQ(controller.placementPolicyName(), "rr");
}

TEST(TieringSpec, KnownPoliciesParse)
{
    EXPECT_FALSE(parseTieringSpec("off").enabled);
    EXPECT_FALSE(parseTieringSpec("none").enabled);
    EXPECT_FALSE(parseTieringSpec("").enabled);
    TieringConfig ewma = parseTieringSpec("ewma");
    EXPECT_TRUE(ewma.enabled);
    EXPECT_EQ(parseTieringSpec("ewma:4").maxPromotesPerPump, 4u);
    for (const std::string &name : tieringPolicyNames())
        EXPECT_TRUE(knownTieringPolicy(name));
}

TEST(TieringSpec, MalformedIsFatal)
{
    EXPECT_THROW(parseTieringSpec("bogus"), FatalError);
    EXPECT_THROW(parseTieringSpec("off:2"), FatalError);
    EXPECT_THROW(parseTieringSpec("ewma:0"), FatalError);
    EXPECT_THROW(parseTieringSpec("ewma:x"), FatalError);
    EXPECT_FALSE(knownTieringPolicy("bogus"));
    EXPECT_FALSE(knownTieringPolicy("off:2"));
    EXPECT_FALSE(knownTieringPolicy("ewma:0"));
}

// --- victim sequences vs a reference model ---------------------------

/** Mirror of one resident way as the reference model sees it. */
struct ModelWay
{
    Addr vpn;
    std::uint32_t touches;
};

/** Reference victim pick over @p ways (MRU first), per policy spec. */
Addr
referenceVictim(const std::string &spec,
                const std::vector<ModelWay> &ways,
                const std::set<Addr> &dirty)
{
    std::size_t n = ways.size();
    if (spec == "lfu") {
        std::size_t best = 0;
        for (std::size_t i = 1; i < n; ++i)
            if (ways[i].touches <= ways[best].touches)
                best = i;
        return ways[best].vpn;
    }
    if (spec == "scan:2") {
        for (std::size_t i = n; i-- > 0;)
            if (ways[i].touches < 2)
                return ways[i].vpn;
        return ways[n - 1].vpn;
    }
    if (spec == "dirty") {
        for (std::size_t i = n; i-- > 0;)
            if (dirty.count(ways[i].vpn) != 0)
                return ways[i].vpn;
        return ways[n - 1].vpn;
    }
    return ways[n - 1].vpn;   // lru
}

/**
 * Drive a seeded trace through a one-set cache and the reference
 * model in lockstep, checking every victim decision.
 */
void
checkVictimSequence(const std::string &spec, std::uint64_t seed)
{
    // 4 frames, 4 ways -> a single set: every page is a candidate.
    FMemCache fmem(4 * pageSize, 4, {}, spec);
    ASSERT_EQ(fmem.numSets(), 1u);
    std::vector<ModelWay> model;
    std::set<Addr> dirty;
    fmem.setDirtyProbe([&](Addr vpn) { return dirty.count(vpn) != 0; });

    Rng rng(seed);
    for (int i = 0; i < 4000; ++i) {
        Addr vpn = rng.below(12);
        if (fmem.lookup(vpn).has_value()) {
            auto it = std::find_if(
                model.begin(), model.end(),
                [vpn](const ModelWay &w) { return w.vpn == vpn; });
            ASSERT_NE(it, model.end()) << spec << " access " << i;
            ModelWay way = *it;
            ++way.touches;
            model.erase(it);
            model.insert(model.begin(), way);
        } else {
            std::optional<FMemCache::Victim> victim =
                fmem.victimFor(vpn);
            if (model.size() == 4) {
                ASSERT_TRUE(victim.has_value())
                    << spec << " access " << i;
                Addr expected = referenceVictim(spec, model, dirty);
                ASSERT_EQ(victim->vfmemPage, expected)
                    << spec << " seed " << seed << " access " << i;
                fmem.remove(victim->vfmemPage);
                dirty.erase(victim->vfmemPage);
                model.erase(std::find_if(
                    model.begin(), model.end(),
                    [&](const ModelWay &w) {
                        return w.vpn == expected;
                    }));
            } else {
                EXPECT_FALSE(victim.has_value())
                    << spec << " access " << i;
            }
            fmem.insert(vpn);
            model.insert(model.begin(), ModelWay{vpn, 1});
        }
        if (rng.below(4) == 0)
            dirty.insert(vpn);
        ASSERT_TRUE(fmem.checkInvariants());
    }
}

TEST(VictimPolicy, SequencesMatchReferenceModel)
{
    for (const std::string &spec :
         {std::string("lru"), std::string("lfu"), std::string("scan:2"),
          std::string("dirty")})
        for (std::uint64_t seed : {1u, 2u, 3u})
            checkVictimSequence(spec, seed);
}

// --- fenced and governed pages are never victims ---------------------

class VictimFilterFixture : public ::testing::Test
{
  protected:
    /** One-set cache holding pages 0..3 under @p spec. */
    static FMemCache
    fullCache(const std::string &spec)
    {
        FMemCache fmem(4 * pageSize, 4, {}, spec);
        for (Addr vpn = 0; vpn < 4; ++vpn)
            fmem.insert(vpn);
        return fmem;
    }
};

TEST_F(VictimFilterFixture, FencedPagesNeverChosen)
{
    for (const std::string &spec :
         {std::string("lru"), std::string("lfu"), std::string("scan:2"),
          std::string("dirty")}) {
        for (Addr survivor = 0; survivor < 4; ++survivor) {
            FMemCache fmem = fullCache(spec);
            fmem.setDirtyProbe([](Addr) { return true; });
            for (Addr vpn = 0; vpn < 4; ++vpn)
                if (vpn != survivor)
                    fmem.setEvictionInFlight(vpn, true);
            std::optional<FMemCache::Victim> victim = fmem.victimFor(4);
            ASSERT_TRUE(victim.has_value()) << spec;
            EXPECT_EQ(victim->vfmemPage, survivor) << spec;
        }
    }
}

TEST_F(VictimFilterFixture, WhollyFencedSetStillYieldsAVictim)
{
    FMemCache fmem = fullCache("lfu");
    for (Addr vpn = 0; vpn < 4; ++vpn)
        fmem.setEvictionInFlight(vpn, true);
    std::optional<FMemCache::Victim> victim = fmem.victimFor(4);
    ASSERT_TRUE(victim.has_value());
    EXPECT_LT(victim->vfmemPage, 4u);
}

TEST_F(VictimFilterFixture, GovernedPagesDeprioritized)
{
    for (const std::string &spec :
         {std::string("lru"), std::string("lfu"), std::string("scan:2"),
          std::string("dirty")}) {
        for (Addr survivor = 0; survivor < 4; ++survivor) {
            FMemCache fmem = fullCache(spec);
            fmem.setDirtyProbe([](Addr) { return true; });
            fmem.setGovernedProbe([survivor](Addr vpn) {
                return vpn != survivor;
            });
            std::optional<FMemCache::Victim> victim = fmem.victimFor(4);
            ASSERT_TRUE(victim.has_value()) << spec;
            EXPECT_EQ(victim->vfmemPage, survivor) << spec;
        }
    }
}

TEST_F(VictimFilterFixture, AllGovernedStillEvicts)
{
    FMemCache fmem = fullCache("lru");
    fmem.setGovernedProbe([](Addr) { return true; });
    std::optional<FMemCache::Victim> victim = fmem.victimFor(4);
    ASSERT_TRUE(victim.has_value());
    EXPECT_LT(victim->vfmemPage, 4u);
}

// --- placement semantics and determinism -----------------------------

class PlacementFixture : public ::testing::Test
{
  protected:
    /** Rack of three differently-sized nodes under @p policy. */
    struct Rack
    {
        explicit Rack(const std::string &policy)
            : controller(1 * MiB, MetricScope{}, policy)
        {
            nodes.push_back(
                std::make_unique<MemoryNode>(fabric, 10, 8 * MiB));
            nodes.push_back(
                std::make_unique<MemoryNode>(fabric, 11, 16 * MiB));
            nodes.push_back(
                std::make_unique<MemoryNode>(fabric, 12, 24 * MiB));
            for (auto &node : nodes)
                controller.registerNode(*node);
        }

        std::vector<NodeId>
        allocateRun(std::size_t count)
        {
            std::vector<NodeId> where;
            for (std::size_t i = 0; i < count; ++i)
                where.push_back(
                    controller
                        .allocateSlab(PlacementRequest{.required = true})
                        ->where.node);
            return where;
        }

        Fabric fabric;
        Controller controller;
        std::vector<std::unique_ptr<MemoryNode>> nodes;
    };
};

TEST_F(PlacementFixture, DeterministicAcrossReruns)
{
    for (const std::string &policy : placementPolicyNames()) {
        Rack a(policy), b(policy);
        EXPECT_EQ(a.allocateRun(24), b.allocateRun(24)) << policy;
    }
}

TEST_F(PlacementFixture, FreePicksMostFreeBytes)
{
    Rack rack("free");
    // Node 12 starts 8 MiB ahead of node 11: the first 8 grants all
    // land there before the policy starts alternating.
    std::vector<NodeId> where = rack.allocateRun(8);
    for (NodeId node : where)
        EXPECT_EQ(node, 12u);
}

TEST_F(PlacementFixture, FirstPacksLowestNodeUntilFull)
{
    Rack rack("first");
    std::vector<NodeId> where = rack.allocateRun(6);
    // 8 MiB minus the 4 MiB CL-log landing area -> 4 slabs on node 10.
    for (std::size_t i = 0; i < 4; ++i)
        EXPECT_EQ(where[i], 10u) << i;
    EXPECT_EQ(where[4], 11u);
    EXPECT_EQ(where[5], 11u);
}

TEST_F(PlacementFixture, RoundRobinCyclesNodeIds)
{
    Rack rack("rr");
    std::vector<NodeId> where = rack.allocateRun(9);
    const NodeId expected[] = {10, 11, 12, 10, 11, 12, 10, 11, 12};
    for (std::size_t i = 0; i < 9; ++i)
        EXPECT_EQ(where[i], expected[i]) << i;
}

TEST_F(PlacementFixture, HealthDiscountsShakyNodes)
{
    Rack rack("health");
    // Keep both nodes Healthy (no membership transitions) while node
    // 12's badness EWMA climbs: the policy should route new slabs to
    // the pristine-but-smaller node 11 instead.
    HealthPolicy lenient;
    lenient.suspectThreshold = 2.0;     // score is capped at 1.0:
    lenient.quarantineThreshold = 3.0;  // never transitions
    rack.controller.setHealthPolicy(lenient);
    for (int i = 0; i < 32; ++i)
        rack.controller.observeNak(12);
    EXPECT_GT(rack.controller.healthScore(12), 0.5);
    EXPECT_EQ(rack.controller.health(12), NodeHealth::Healthy);
    EXPECT_EQ(rack.controller.allocateSlab(PlacementRequest{})
                  ->where.node,
              11u);
}

TEST_F(PlacementFixture, AvoidExcludesNodes)
{
    Rack rack("free");
    SlabGrant grant = *rack.controller.allocateSlab(
        PlacementRequest{.avoid = {11, 12}});
    EXPECT_EQ(grant.where.node, 10u);
    // Avoiding everything is not satisfiable: nullopt, or fatal when
    // the request is required.
    EXPECT_EQ(rack.controller.allocateSlab(
                  PlacementRequest{.avoid = {10, 11, 12}}),
              std::nullopt);
    EXPECT_THROW(rack.controller.allocateSlab(PlacementRequest{
                     .avoid = {10, 11, 12}, .required = true}),
                 FatalError);
}

TEST_F(PlacementFixture, PinToBypassesPolicyAndHealthFilter)
{
    Rack rack("free");
    // The policy would pick node 12 (most free); the pin wins.
    EXPECT_EQ(rack.controller.allocateSlab(PlacementRequest{.pinTo = 10})
                  ->where.node,
              10u);
    // A draining node takes no policy placements but still accepts
    // pinned ones (rebalance onto joining nodes relies on this).
    rack.controller.drainNode(11);
    std::vector<NodeId> where = rack.allocateRun(12);
    EXPECT_EQ(std::count(where.begin(), where.end(), 11u), 0);
    EXPECT_EQ(rack.controller.allocateSlab(PlacementRequest{.pinTo = 11})
                  ->where.node,
              11u);
}

// --- TieringEngine mechanics -----------------------------------------

class TieringFixture : public ::testing::Test
{
  protected:
    static TieringConfig
    config()
    {
        TieringConfig c;
        c.enabled = true;
        c.maxPromotesPerPump = 8;
        c.maxDemotesPerPump = 2;
        c.hotThreshold = 2.0;
        c.coldThreshold = 0.5;
        c.halfLifeNs = 1000;
        c.minResidencyNs = 100;
        c.pressureWatermark = 0.9;
        c.scanWindow = 16;
        return c;
    }
};

TEST_F(TieringFixture, HeatDecaysByHalfLife)
{
    TieringEngine tiering(100, 16, config());
    for (int i = 0; i < 3; ++i)
        tiering.observe(105, 0);
    EXPECT_DOUBLE_EQ(tiering.heatOf(105, 0), 3.0);
    EXPECT_DOUBLE_EQ(tiering.heatOf(105, 1000), 1.5);   // one half-life
    EXPECT_NEAR(tiering.heatOf(105, 100 * 1000), 0.0, 1e-9);
    EXPECT_DOUBLE_EQ(tiering.heatOf(104, 0), 0.0);      // never touched
    EXPECT_DOUBLE_EQ(tiering.heatOf(999, 0), 0.0);      // untracked
}

TEST_F(TieringFixture, PromotesHotNonResidentPagesOnly)
{
    TieringEngine tiering(100, 16, config());
    std::vector<Addr> promoted;
    std::set<Addr> resident;
    tiering.setHooks(
        [&](Addr vpn, Tick) {
            promoted.push_back(vpn);
            resident.insert(vpn);
            return true;
        },
        nullptr, [&](Addr vpn) { return resident.count(vpn) != 0; },
        [] { return 0.0; });

    for (int i = 0; i < 3; ++i) {
        tiering.observe(103, 0);   // hot, not resident -> promote
        tiering.observe(107, 0);   // hot but already resident
    }
    resident.insert(107);
    tiering.observe(109, 0);       // heat 1 < hotThreshold: too cold

    tiering.pump(0);
    ASSERT_EQ(promoted.size(), 1u);
    EXPECT_EQ(promoted[0], 103u);
    EXPECT_EQ(tiering.promoted(), 1u);

    tiering.pump(0);               // now resident: no re-promotion
    EXPECT_EQ(promoted.size(), 1u);
}

TEST_F(TieringFixture, PromotionsPerPumpAreBounded)
{
    TieringConfig c = config();
    c.maxPromotesPerPump = 2;
    TieringEngine tiering(100, 16, c);
    std::size_t promotes = 0;
    tiering.setHooks([&](Addr, Tick) { ++promotes; return true; },
                     nullptr, [](Addr) { return false; },
                     [] { return 0.0; });
    for (Addr vpn = 100; vpn < 108; ++vpn)
        for (int i = 0; i < 3; ++i)
            tiering.observe(vpn, 0);
    tiering.pump(0);
    EXPECT_EQ(promotes, 2u);
}

TEST_F(TieringFixture, DemotesColdResidentPagesUnderPressure)
{
    TieringEngine tiering(100, 16, config());
    std::vector<Addr> demoted;
    double pressure = 1.0;
    tiering.setHooks(
        [](Addr, Tick) { return true; },
        [&](const Addr *vpns, std::size_t n) {
            demoted.insert(demoted.end(), vpns, vpns + n);
        },
        [](Addr) { return true; },   // everything resident
        [&] { return pressure; });

    for (Addr vpn = 100; vpn < 104; ++vpn)
        tiering.observe(vpn, 0);
    // By t = 20 half-lives every page is far below coldThreshold and
    // past minResidencyNs, but the batch cap holds demotions to 2.
    tiering.pump(20'000);
    EXPECT_EQ(demoted.size(), 2u);
    EXPECT_EQ(tiering.demoted(), 2u);

    // Below the watermark nothing is demoted.
    demoted.clear();
    pressure = 0.0;
    tiering.pump(40'000);
    EXPECT_TRUE(demoted.empty());
}

TEST_F(TieringFixture, AttributionCountersTrackOutcomes)
{
    TieringEngine tiering(100, 16, config());
    tiering.onPromotedUseful(103, 500);
    tiering.onPromotedUseful(104, 700);
    tiering.onPromotedWasted(105);
    EXPECT_EQ(tiering.promotedUseful(), 2u);
    EXPECT_EQ(tiering.promotedWasted(), 1u);
}

// --- runtime integration: shifting working set, no lost pages --------

TEST(TieringIntegration, ShiftingWorkingSetLosesNoPages)
{
    Fabric fabric;
    Controller controller(1 * MiB);
    MemoryNode node(fabric, 5, 128 * MiB);
    controller.registerNode(node);

    KonaConfig cfg;
    cfg.fpga.vfmemSize = 64 * MiB;
    cfg.fpga.fmemSize = 2 * MiB;   // 512 frames
    cfg.fpga.victimPolicy = "scan:2";
    cfg.hierarchy = HierarchyConfig::scaled();
    cfg.tiering = "ewma";
    KonaRuntime runtime(fabric, controller, 0, cfg);
    ASSERT_NE(runtime.tieringEngine(), nullptr);

    constexpr std::size_t numPages = 1536;   // 3x FMem
    Addr region = runtime.allocate(numPages * pageSize, pageSize);
    std::vector<std::uint64_t> expected(numPages);
    for (std::size_t p = 0; p < numPages; ++p) {
        expected[p] = 0x9e3779b97f4a7c15ULL * (p + 1);
        runtime.store<std::uint64_t>(region + p * pageSize,
                                     expected[p]);
    }

    // Three phases, each hammering a different third of the heap with
    // occasional rewrites; the oracle tracks every store.
    Rng rng(7);
    for (std::size_t phase = 0; phase < 3; ++phase) {
        std::size_t base = phase * 512;
        for (int i = 0; i < 12'000; ++i) {
            std::size_t p = rng.below(8) == 0
                                ? rng.below(numPages)
                                : base + rng.below(160);
            Addr addr = region + p * pageSize;
            if (rng.below(4) == 0) {
                expected[p] ^= 0x5bd1e995u + i;
                runtime.store<std::uint64_t>(addr, expected[p]);
            } else {
                EXPECT_EQ(runtime.load<std::uint64_t>(addr),
                          expected[p])
                    << "phase " << phase << " page " << p;
            }
        }
    }

    const TieringEngine &tiering = *runtime.tieringEngine();
    EXPECT_GT(tiering.promoted(), 0u);

    // No-lost-pages content oracle: every page still reads back the
    // last value stored to it, wherever tiering moved it.
    std::size_t lost = 0;
    for (std::size_t p = 0; p < numPages; ++p)
        if (runtime.load<std::uint64_t>(region + p * pageSize) !=
            expected[p])
            ++lost;
    EXPECT_EQ(lost, 0u);
    EXPECT_TRUE(runtime.fpga().fmem().checkInvariants());
}

} // namespace
} // namespace kona
