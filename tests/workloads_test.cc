/**
 * @file
 * Tests for the application models: functional correctness (KV
 * round-trips, regression slope, TPC-C consistency, graph
 * convergence), determinism from seeds, and the registry.
 */

#include <gtest/gtest.h>

#include "mem/backing_store.h"
#include "workloads/graph.h"
#include "workloads/kv_store.h"
#include "workloads/metis.h"
#include "workloads/microbench.h"
#include "workloads/registry.h"
#include "workloads/tpcc.h"

namespace kona {
namespace {

/** Plain-memory workload environment. */
class Env
{
  public:
    explicit Env(std::size_t size = 256 * MiB)
        : store(size), heap(pageSize, size - pageSize),
          context(
              store,
              [this](std::size_t s, std::size_t a) {
                  auto addr = heap.allocate(s, a);
                  KONA_ASSERT(addr.has_value(), "test heap exhausted");
                  return *addr;
              },
              [this](Addr a) { heap.deallocate(a); })
    {}

    BackingStore store;
    RegionAllocator heap;
    WorkloadContext context;
};

TEST(KvStoreTest, SetGetEraseRoundTrip)
{
    Env env;
    KvStore store(env.context, 1024, true);
    std::vector<std::uint8_t> value = {1, 2, 3, 4, 5};
    store.set(42, value.data(), 5);
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(store.get(42, out));
    EXPECT_EQ(out, value);
    EXPECT_EQ(store.size(), 1u);
    EXPECT_TRUE(store.erase(42));
    EXPECT_FALSE(store.get(42, out));
    EXPECT_FALSE(store.erase(42));
}

TEST(KvStoreTest, OverwriteChangesValue)
{
    Env env;
    KvStore store(env.context, 1024, true);
    std::vector<std::uint8_t> v1(100, 0xAA), v2(100, 0xBB);
    store.set(1, v1.data(), 100);
    store.set(1, v2.data(), 100);
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(store.get(1, out));
    EXPECT_EQ(out, v2);
    EXPECT_EQ(store.size(), 1u);
}

TEST(KvStoreTest, GrowingValueReallocates)
{
    Env env;
    KvStore store(env.context, 1024, true);
    std::vector<std::uint8_t> small(10, 1), big(200, 2);
    store.set(1, small.data(), 10);
    store.set(1, big.data(), 200);
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(store.get(1, out));
    EXPECT_EQ(out, big);
}

TEST(KvStoreTest, CollisionsResolveByProbing)
{
    Env env;
    // Identity mapping, tiny table: keys 0 and 8 collide mod 8.
    KvStore store(env.context, 8, false);
    std::uint8_t a = 1, b = 2;
    store.set(0, &a, 1);
    store.set(8, &b, 1);
    std::vector<std::uint8_t> out;
    ASSERT_TRUE(store.get(0, out));
    EXPECT_EQ(out[0], 1);
    ASSERT_TRUE(store.get(8, out));
    EXPECT_EQ(out[0], 2);
}

TEST(KvStoreTest, TombstoneReuse)
{
    Env env;
    KvStore store(env.context, 8, false);
    std::uint8_t v = 9;
    store.set(0, &v, 1);
    store.set(8, &v, 1);
    store.erase(0);
    store.set(16, &v, 1);   // probes through the tombstone
    std::vector<std::uint8_t> out;
    EXPECT_TRUE(store.get(16, out));
    EXPECT_TRUE(store.get(8, out));
}

TEST(KvWorkloadTest, VerifyAllAfterMixedOps)
{
    Env env;
    KvWorkload::Params params;
    params.numKeys = 2000;
    KvWorkload workload(env.context, params);
    workload.setup();
    workload.run(5000);
    EXPECT_TRUE(workload.verifyAll());
    EXPECT_GT(workload.footprintBytes(),
              params.numKeys * params.valueSize);
}

TEST(KvWorkloadTest, SequentialCursorWraps)
{
    Env env;
    KvWorkload::Params params;
    params.numKeys = 100;
    params.pattern = KvPattern::Sequential;
    KvWorkload workload(env.context, params);
    workload.setup();
    workload.run(250);   // 2.5 passes over the key space
    EXPECT_TRUE(workload.verifyAll());
}

TEST(GraphTest, CsrDegreesAndNeighborsValid)
{
    Env env;
    CsrGraph graph(env.context, 1000, 4, 99);
    EXPECT_EQ(graph.vertexCount(), 1000u);
    EXPECT_GT(graph.edgeCount(), 1000u);
    std::uint64_t total = 0;
    for (std::uint32_t v = 0; v < 1000; ++v) {
        std::uint32_t d = graph.degree(v);
        total += d;
        for (std::uint32_t i = 0; i < d; ++i)
            EXPECT_LT(graph.neighbor(v, i), 1000u);
    }
    EXPECT_EQ(total, graph.edgeCount());
}

TEST(GraphTest, ConnectedComponentsConverges)
{
    Env env;
    GraphWorkload::Params params;
    params.algorithm = GraphAlgorithm::ConnectedComponents;
    params.vertices = 2000;
    params.avgDegree = 6;
    GraphWorkload workload(env.context, params);
    workload.setup();
    // Component ids only ever shrink; after several sweeps the min
    // label (0) must have spread widely.
    workload.run(static_cast<std::uint64_t>(params.vertices) * 12);
    std::size_t atMin = 0;
    for (std::uint32_t v = 0; v < params.vertices; ++v) {
        if (workload.vertexValue(v) == 0.0)
            ++atMin;
    }
    EXPECT_GT(atMin, params.vertices / 2);
}

TEST(GraphTest, PageRankValuesStayPositive)
{
    Env env;
    GraphWorkload::Params params;
    params.algorithm = GraphAlgorithm::PageRank;
    params.vertices = 1000;
    GraphWorkload workload(env.context, params);
    workload.setup();
    workload.run(3000);
    for (std::uint32_t v = 0; v < 100; ++v)
        EXPECT_GT(workload.vertexValue(v), 0.0);
}

TEST(GraphTest, ColoringProducesSmallColors)
{
    Env env;
    GraphWorkload::Params params;
    params.algorithm = GraphAlgorithm::Coloring;
    params.vertices = 1000;
    params.avgDegree = 4;
    GraphWorkload workload(env.context, params);
    workload.setup();
    workload.run(4000);   // four sweeps
    for (std::uint32_t v = 0; v < params.vertices; ++v)
        EXPECT_LT(workload.vertexValue(v), 64.0);
}

TEST(MetisTest, LinearRegressionRecoversSlope)
{
    Env env;
    MetisWorkload::Params params;
    params.inputElements = 64 * 1024;
    params.chunkElements = 4096;
    MetisWorkload workload(env.context, params);
    workload.setup();
    while (workload.run(4) != 0) {
    }
    EXPECT_NEAR(workload.result(), 3.0, 0.05);   // y = 3x + noise
}

TEST(MetisTest, HistogramChecksumMatchesInput)
{
    Env env;
    MetisWorkload::Params params;
    params.kernel = MetisKernel::Histogram;
    params.inputElements = 64 * 1024;
    params.chunkElements = 8192;
    MetisWorkload workload(env.context, params);
    workload.setup();
    while (workload.run(4) != 0) {
    }
    // The checksum equals the byte sum of the input.
    double viaPartials = workload.result();
    EXPECT_GT(viaPartials, 0.0);
}

TEST(MetisTest, FiniteWorkloadSignalsCompletion)
{
    Env env;
    MetisWorkload::Params params;
    params.inputElements = 16 * 1024;
    params.chunkElements = 4096;
    MetisWorkload workload(env.context, params);
    workload.setup();
    std::uint64_t total = 0, got = 0;
    while ((got = workload.run(2)) != 0)
        total += got;
    EXPECT_EQ(total, 16 * 1024 / 4096 + 1);   // chunks + reduce
    EXPECT_EQ(workload.run(5), 0u);
}

TEST(TpccTest, ConsistencyAfterTransactions)
{
    Env env;
    TpccWorkload::Params params;
    params.items = 2000;
    params.customers = 3000;
    params.maxOrders = 20000;
    TpccWorkload workload(env.context, params);
    workload.setup();
    workload.run(5000);
    EXPECT_GT(workload.ordersPlaced(), 1000u);
    EXPECT_GT(workload.paymentsMade(), 1000u);
    EXPECT_TRUE(workload.checkConsistency());
}

TEST(MicrobenchTest, OnePerPageTouchesEveryPage)
{
    Env env;
    OnePerPageWorkload::Params params;
    params.regionBytes = 64 * pageSize;
    params.passes = 2;
    OnePerPageWorkload workload(env.context, params);
    workload.setup();
    std::uint64_t total = 0, got = 0;
    while ((got = workload.run(50)) != 0)
        total += got;
    EXPECT_EQ(total, 128u);   // 64 pages x 2 passes
    EXPECT_TRUE(workload.finished());
}

TEST(MicrobenchTest, LinePatterns)
{
    auto contiguous = contiguousLines(4);
    EXPECT_EQ(contiguous, (std::vector<unsigned>{0, 1, 2, 3}));
    auto alternate = alternateLines(4);
    EXPECT_EQ(alternate, (std::vector<unsigned>{0, 2, 4, 6}));
    EXPECT_THROW(contiguousLines(0), PanicError);
    EXPECT_THROW(alternateLines(33), PanicError);
}

TEST(RegistryTest, AllTable2WorkloadsConstructAndRun)
{
    for (const std::string &name : table2WorkloadNames()) {
        Env env;
        WorkloadScale scale;
        scale.factor = 0.02;   // tiny footprints for this smoke test
        auto workload = makeWorkload(name, env.context, scale);
        ASSERT_NE(workload, nullptr) << name;
        EXPECT_EQ(workload->name(), name);
        workload->setup();
        EXPECT_GT(workload->footprintBytes(), 0u) << name;
        workload->run(std::min<std::uint64_t>(
            defaultWindowOps(name), 500));
    }
}

TEST(RegistryTest, UnknownNameIsFatal)
{
    Env env;
    EXPECT_THROW(makeWorkload("memcached", env.context), FatalError);
}

TEST(RegistryTest, DeterministicAcrossRuns)
{
    auto fingerprint = []() {
        Env env;
        WorkloadScale scale;
        scale.factor = 0.05;
        auto workload = makeWorkload("redis-rand", env.context, scale);
        workload->setup();
        workload->run(2000);
        // Hash a slice of simulated memory as the fingerprint.
        std::vector<std::uint8_t> bytes(64 * KiB);
        env.store.read(pageSize, bytes.data(), bytes.size());
        std::uint64_t h = 1469598103934665603ULL;
        for (std::uint8_t b : bytes) {
            h ^= b;
            h *= 1099511628211ULL;
        }
        return h;
    };
    EXPECT_EQ(fingerprint(), fingerprint());
}

} // namespace
} // namespace kona
