/**
 * @file
 * Focused tests for the EvictionHandler: batching semantics, CL-log
 * content landing byte-exactly on memory nodes, silent eviction,
 * FullPage mode, the cost breakdown, batch chunking, and behaviour
 * under node failures.
 */

#include <gtest/gtest.h>

#include "core/kona_runtime.h"

namespace kona {
namespace {

class EvictionFixture : public ::testing::Test
{
  protected:
    EvictionFixture() : controller(1 * MiB)
    {
        node = std::make_unique<MemoryNode>(fabric, 5, 128 * MiB);
        controller.registerNode(*node);
        rebuild({});
    }

    /** (Re)create the runtime with @p evict layered on the defaults. */
    void
    rebuild(EvictionConfig evict)
    {
        evict.pumpPeriod = ~std::size_t(0);   // manual only
        KonaConfig cfg;
        cfg.fpga.vfmemSize = 64 * MiB;
        cfg.fpga.fmemSize = 8 * MiB;
        cfg.hierarchy = HierarchyConfig::scaled();
        cfg.evict = evict;
        runtime = std::make_unique<KonaRuntime>(fabric, controller, 0,
                                                cfg);
        region = runtime->allocate(512 * pageSize, pageSize);
    }

    /** Dirty @p count lines at the start of page @p p. */
    void
    dirtyPage(std::size_t p, unsigned count)
    {
        for (unsigned l = 0; l < count; ++l) {
            runtime->store<std::uint64_t>(
                region + p * pageSize + l * cacheLineSize,
                p * 100 + l + 1);
        }
    }

    std::vector<Addr>
    vpns(std::size_t from, std::size_t to)
    {
        std::vector<Addr> out;
        for (std::size_t p = from; p < to; ++p)
            out.push_back(pageNumber(region) + p);
        return out;
    }

    EvictionHandler &handler() { return runtime->evictionHandler(); }

    Fabric fabric;
    Controller controller;
    std::unique_ptr<MemoryNode> node;
    std::unique_ptr<KonaRuntime> runtime;
    Addr region = 0;
};

TEST_F(EvictionFixture, ClLogLandsBytesExactly)
{
    dirtyPage(0, 3);
    dirtyPage(1, 1);
    runtime->hierarchy().flushAll();
    SimClock clock;
    handler().evictBatch(vpns(0, 2), clock);

    // Verify against the memory node directly.
    for (std::size_t p = 0; p < 2; ++p) {
        RemoteLocation loc = runtime->fpga().translation().translate(
            region + p * pageSize);
        std::uint64_t value = 0;
        fabric.nodeStore(loc.node).read(loc.addr, &value,
                                        sizeof(value));
        EXPECT_EQ(value, p * 100 + 1);
    }
    EXPECT_EQ(handler().dirtyLinesWritten(), 4u);
    EXPECT_EQ(handler().pagesEvicted(), 2u);
}

TEST_F(EvictionFixture, BatchSharesOneAck)
{
    // Evicting N pages in one batch must cost far less than N
    // single-page evictions (one RDMA + ack per batch vs per page).
    dirtyPage(0, 1);
    dirtyPage(1, 1);
    dirtyPage(2, 1);
    dirtyPage(3, 1);
    runtime->hierarchy().flushAll();
    SimClock batched;
    handler().evictBatch(vpns(0, 4), batched);

    for (std::size_t p = 4; p < 8; ++p)
        dirtyPage(p, 1);
    runtime->hierarchy().flushAll();
    SimClock individual;
    for (std::size_t p = 4; p < 8; ++p)
        handler().evictPage(pageNumber(region) + p, individual);

    EXPECT_LT(batched.now(), individual.now() / 2);
}

TEST_F(EvictionFixture, SilentEvictionForCleanPages)
{
    std::uint64_t sink = 0;
    for (std::size_t p = 0; p < 4; ++p)
        sink += runtime->load<std::uint64_t>(region + p * pageSize);
    (void)sink;
    runtime->hierarchy().flushAll();
    auto wireBefore = handler().bytesOnWire();
    SimClock clock;
    handler().evictBatch(vpns(0, 4), clock);
    EXPECT_EQ(handler().silentEvictions(), 4u);
    EXPECT_EQ(handler().bytesOnWire(), wireBefore);
    // Silent evictions still free the frames.
    EXPECT_FALSE(runtime->fpga().pageResident(pageNumber(region)));
}

TEST_F(EvictionFixture, SnoopCapturesCpuCachedDirtyLines)
{
    // Do NOT flush the hierarchy: the dirty line sits in the CPU
    // caches and only the snoop inside eviction can find it.
    dirtyPage(7, 1);
    SimClock clock;
    handler().evictBatch(vpns(7, 8), clock);
    RemoteLocation loc = runtime->fpga().translation().translate(
        region + 7 * pageSize);
    std::uint64_t value = 0;
    fabric.nodeStore(loc.node).read(loc.addr, &value, sizeof(value));
    EXPECT_EQ(value, 7u * 100 + 1);
}

TEST_F(EvictionFixture, BreakdownSumsToTotal)
{
    for (std::size_t p = 0; p < 16; ++p)
        dirtyPage(p, 4);
    runtime->hierarchy().flushAll();
    handler().resetBreakdown();
    SimClock clock;
    handler().evictBatch(vpns(0, 16), clock);
    const EvictionBreakdown &bd = handler().breakdown();
    EXPECT_GT(bd.bitmapNs, 0.0);
    EXPECT_GT(bd.copyNs, 0.0);
    EXPECT_GT(bd.rdmaNs, 0.0);
    EXPECT_GT(bd.unpackNs, 0.0);
    EXPECT_GT(bd.waitNs, 0.0);
    // The clock moved at least as much as the serial components.
    EXPECT_GE(static_cast<double>(clock.now()) + 1.0,
              bd.bitmapNs + bd.copyNs);
}

TEST_F(EvictionFixture, LargeBatchesAreChunked)
{
    // 512 fully dirty pages > the 256-page batch limit; the handler
    // must split them rather than overflow the node's log area.
    for (std::size_t p = 0; p < 512; ++p) {
        std::vector<std::uint8_t> page(pageSize,
                                       static_cast<std::uint8_t>(p));
        runtime->write(region + p * pageSize, page.data(), pageSize);
    }
    runtime->hierarchy().flushAll();
    SimClock clock;
    EXPECT_NO_THROW(handler().evictBatch(vpns(0, 512), clock));
    EXPECT_EQ(handler().pagesEvicted(), 512u);
    // Spot-check content.
    RemoteLocation loc = runtime->fpga().translation().translate(
        region + 300 * pageSize + 123);
    std::uint8_t b = 0;
    fabric.nodeStore(loc.node).read(loc.addr, &b, 1);
    EXPECT_EQ(b, static_cast<std::uint8_t>(300));
}

TEST_F(EvictionFixture, FullPageModeShipsWholePages)
{
    EvictionConfig evict;
    evict.mode = EvictionMode::FullPage;
    rebuild(evict);
    dirtyPage(0, 1);
    dirtyPage(1, 1);
    runtime->hierarchy().flushAll();
    SimClock clock;
    handler().evictBatch(vpns(0, 2), clock);
    EXPECT_EQ(handler().bytesOnWire(), 2 * pageSize);
    EXPECT_EQ(handler().dirtyLinesWritten(), 2u);

    // Content still exact.
    RemoteLocation loc = runtime->fpga().translation().translate(
        region + pageSize);
    std::uint64_t value = 0;
    fabric.nodeStore(loc.node).read(loc.addr, &value, sizeof(value));
    EXPECT_EQ(value, 101u);
}

TEST_F(EvictionFixture, NodeDownKeepsDirtyPagesResident)
{
    dirtyPage(0, 2);
    runtime->hierarchy().flushAll();
    fabric.setNodeDown(5, true);
    SimClock clock;
    handler().evictBatch(vpns(0, 1), clock);
    // Data must not be lost: the page stays resident.
    EXPECT_TRUE(runtime->fpga().pageResident(pageNumber(region)));
    EXPECT_EQ(handler().pagesEvicted(), 0u);

    fabric.setNodeDown(5, false);
    handler().evictBatch(vpns(0, 1), clock);
    EXPECT_FALSE(runtime->fpga().pageResident(pageNumber(region)));
    EXPECT_EQ(runtime->load<std::uint64_t>(region), 1u);
}

TEST_F(EvictionFixture, PumpKeepsFreeWays)
{
    // Fill FMem past capacity by touching 3x its frames, then pump.
    std::size_t frames = runtime->fpga().fmem().frames();
    Addr big = runtime->allocate(3 * frames * pageSize, pageSize);
    for (std::size_t p = 0; p < 3 * frames; ++p)
        runtime->store<std::uint64_t>(big + p * pageSize, p);
    SimClock bg;
    handler().pump(bg, 1);
    // Every set now has at least one free way: inserting any new page
    // cannot require a forced eviction.
    EXPECT_EQ(runtime->fpga().backgroundVictims(1, nullptr, 0), 0u);
    EXPECT_GT(bg.now(), 0u);
}

TEST_F(EvictionFixture, EvictingNonResidentPagesIsANoop)
{
    SimClock clock;
    EXPECT_NO_THROW(handler().evictBatch(vpns(100, 104), clock));
    EXPECT_EQ(handler().pagesEvicted(), 0u);
    EXPECT_EQ(clock.now(), 0u);
}

TEST_F(EvictionFixture, ReEvictionAfterRedirty)
{
    dirtyPage(0, 1);
    runtime->hierarchy().flushAll();
    SimClock clock;
    handler().evictBatch(vpns(0, 1), clock);
    EXPECT_EQ(handler().dirtyLinesWritten(), 1u);

    // Touch it again with different data; evict again.
    runtime->store<std::uint64_t>(region + 2 * cacheLineSize, 777);
    runtime->hierarchy().flushAll();
    handler().evictBatch(vpns(0, 1), clock);
    EXPECT_EQ(handler().dirtyLinesWritten(), 2u);
    EXPECT_EQ(runtime->load<std::uint64_t>(region + 2 * cacheLineSize),
              777u);
}

} // namespace
} // namespace kona
