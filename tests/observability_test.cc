/**
 * @file
 * PR 7 observability tests: the sim-time TimeSeriesSampler (window
 * deltas, ring wraparound), the structured EventJournal (ring,
 * JSONL, health-name pinning), tail-latency attribution (exact
 * sum==total, residual bucketing, slowest-1% slice), and the journal /
 * attribution behavior of a full chaos run.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "chaos/chaos_runner.h"
#include "chaos/chaos_scenario.h"
#include "core/kona_runtime.h"
#include "telemetry/attribution.h"
#include "telemetry/event_journal.h"
#include "telemetry/metric_registry.h"
#include "telemetry/time_series.h"

namespace kona {
namespace {

// ---------------------------------------------------------------------
// TimeSeriesSampler
// ---------------------------------------------------------------------

TEST(TimeSeries, WindowDeltasAreExact)
{
    auto registry = std::make_shared<MetricRegistry>();
    Counter &hits = registry->counter("hits");
    Gauge &depth = registry->gauge("depth");
    LatencyHistogram &lat = registry->histogram("lat_ns");

    hits.add(5); // pre-attach activity is not part of any window
    lat.record(100.0);

    TimeSeriesSampler sampler(/*intervalNs=*/1000);
    sampler.attach(registry, /*start=*/0);
    ASSERT_EQ(sampler.columns(), 4u); // hits, depth, lat.count, lat.sum

    // Window 1: [0, 1500).
    hits.add(3);
    depth.set(7.0);
    lat.record(50.0);
    lat.record(30.0);
    sampler.onTick(500);  // before the deadline: no window closes
    EXPECT_EQ(sampler.windows(), 0u);
    sampler.onTick(1500); // past it: closes with actual bounds
    ASSERT_EQ(sampler.windows(), 1u);
    EXPECT_EQ(sampler.windowStartNs(0), 0u);
    EXPECT_EQ(sampler.windowEndNs(0), 1500u);

    std::size_t cHits = sampler.columnIndex("hits");
    std::size_t cDepth = sampler.columnIndex("depth");
    std::size_t cCount = sampler.columnIndex("lat_ns.count");
    std::size_t cSum = sampler.columnIndex("lat_ns.sum");
    ASSERT_LT(cHits, sampler.columns());
    ASSERT_LT(cSum, sampler.columns());
    EXPECT_DOUBLE_EQ(sampler.value(0, cHits), 3.0);   // delta, not total
    EXPECT_DOUBLE_EQ(sampler.value(0, cDepth), 7.0);  // gauge: level
    EXPECT_DOUBLE_EQ(sampler.value(0, cCount), 2.0);
    EXPECT_DOUBLE_EQ(sampler.value(0, cSum), 80.0);

    // Window 2: empty activity, wide jump (outage-style).
    sampler.onTick(50'000);
    ASSERT_EQ(sampler.windows(), 2u);
    EXPECT_EQ(sampler.windowStartNs(1), 1500u);
    EXPECT_EQ(sampler.windowEndNs(1), 50'000u);
    EXPECT_DOUBLE_EQ(sampler.value(1, cHits), 0.0);

    // finish() closes the trailing partial window.
    hits.add(1);
    sampler.finish(50'400);
    ASSERT_EQ(sampler.windows(), 3u);
    EXPECT_EQ(sampler.windowEndNs(2), 50'400u);
    EXPECT_DOUBLE_EQ(sampler.value(2, cHits), 1.0);
}

TEST(TimeSeries, RingDropsOldestOnOverflow)
{
    auto registry = std::make_shared<MetricRegistry>();
    Counter &ticks = registry->counter("ticks");
    TimeSeriesSampler sampler(/*intervalNs=*/10, /*capacity=*/4);
    sampler.attach(registry, 0);

    for (Tick t = 10; t <= 60; t += 10) {
        ticks.add(static_cast<std::uint64_t>(t)); // distinct per window
        sampler.onTick(t);
    }
    EXPECT_EQ(sampler.windows(), 4u);
    EXPECT_EQ(sampler.droppedWindows(), 2u);
    // Oldest two ([0,10) and [10,20)) were dropped.
    std::size_t c = sampler.columnIndex("ticks");
    EXPECT_EQ(sampler.windowStartNs(0), 20u);
    EXPECT_DOUBLE_EQ(sampler.value(0, c), 30.0);
    EXPECT_DOUBLE_EQ(sampler.value(3, c), 60.0);
}

TEST(TimeSeries, CsvAndJsonCarryEveryWindow)
{
    auto registry = std::make_shared<MetricRegistry>();
    Counter &n = registry->counter("n");
    TimeSeriesSampler sampler(100);
    sampler.attach(registry, 0);
    n.add(2);
    sampler.onTick(150);
    n.add(1);
    sampler.finish(200);

    std::ostringstream csv;
    sampler.writeCsv(csv);
    EXPECT_NE(csv.str().find("window_start_ns,window_end_ns,n"),
              std::string::npos);
    EXPECT_NE(csv.str().find("0,150,2"), std::string::npos);
    EXPECT_NE(csv.str().find("150,200,1"), std::string::npos);

    std::ostringstream json;
    sampler.writeJson(json);
    EXPECT_NE(json.str().find("\"columns\""), std::string::npos);
    EXPECT_NE(json.str().find("\"start_ns\": 150"), std::string::npos);
}

// ---------------------------------------------------------------------
// EventJournal
// ---------------------------------------------------------------------

TEST(EventJournal, RingOverwritesOldestAndCountsDrops)
{
    SimClock clock;
    EventJournal journal(/*capacity=*/3);
    journal.setClock(&clock);
    for (std::uint64_t i = 0; i < 5; ++i) {
        clock.advance(10);
        journal.record(JournalKind::RingFullStall, NodeId{1}, i);
    }
    EXPECT_EQ(journal.size(), 3u);
    EXPECT_EQ(journal.recorded(), 5u);
    EXPECT_EQ(journal.dropped(), 2u);
    EXPECT_EQ(journal.event(0).a, 2u); // oldest retained
    EXPECT_EQ(journal.event(2).a, 4u);
    EXPECT_EQ(journal.event(2).ts, 50u);
}

TEST(EventJournal, HealthNamesPinControllerStateOrder)
{
    // The JSONL writer decodes HealthTransition payloads through this
    // table; it must track the NodeHealth enum exactly.
    EXPECT_STREQ(journalHealthName(
                     static_cast<std::uint64_t>(NodeHealth::Healthy)),
                 "healthy");
    EXPECT_STREQ(journalHealthName(
                     static_cast<std::uint64_t>(NodeHealth::Suspect)),
                 "suspect");
    EXPECT_STREQ(journalHealthName(static_cast<std::uint64_t>(
                     NodeHealth::Quarantined)),
                 "quarantined");
    EXPECT_STREQ(journalHealthName(static_cast<std::uint64_t>(
                     NodeHealth::Readmitted)),
                 "readmitted");
    EXPECT_STREQ(journalHealthName(
                     static_cast<std::uint64_t>(NodeHealth::Joining)),
                 "joining");
    EXPECT_STREQ(journalHealthName(
                     static_cast<std::uint64_t>(NodeHealth::Draining)),
                 "draining");
    EXPECT_STREQ(journalHealthName(
                     static_cast<std::uint64_t>(NodeHealth::Failed)),
                 "failed");
}

TEST(EventJournal, JsonlDecodesKindSpecificFields)
{
    SimClock clock;
    EventJournal journal(8);
    journal.setClock(&clock);
    clock.advance(42);
    journal.record(JournalKind::HealthTransition, NodeId{2},
                   static_cast<std::uint64_t>(NodeHealth::Healthy),
                   static_cast<std::uint64_t>(NodeHealth::Suspect),
                   /*epoch=*/7);
    journal.record(JournalKind::StaleHomeMark, NodeId{3}, /*vpn=*/99,
                   /*mask=*/0xff);

    std::string jsonl = journal.toJsonl();
    EXPECT_NE(jsonl.find("\"event\": \"health_transition\""),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"from\": \"healthy\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"to\": \"suspect\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"epoch\": 7"), std::string::npos);
    EXPECT_NE(jsonl.find("\"ts_ns\": 42"), std::string::npos);
    EXPECT_NE(jsonl.find("\"event\": \"stale_home_mark\""),
              std::string::npos);
    EXPECT_NE(jsonl.find("\"vpn\": 99"), std::string::npos);
}

// ---------------------------------------------------------------------
// LatencyAttribution
// ---------------------------------------------------------------------

TEST(Attribution, SerialSampleSumsExactlyToTotal)
{
    LatencyAttribution attr(MissComponent::names, MissComponent::Count);
    attr.begin(1000);
    attr.charge(MissComponent::FmemCheck, 60);
    attr.charge(MissComponent::Wire, 500);
    Tick residual = attr.end(1700, MissComponent::Other);
    EXPECT_EQ(residual, 140u); // 700 total - 560 charged

    EXPECT_EQ(attr.samples(), 1u);
    EXPECT_EQ(attr.totalNs(), 700u);
    Tick sum = 0;
    for (std::size_t c = 0; c < MissComponent::Count; ++c)
        sum += attr.componentNs(c);
    EXPECT_EQ(sum, attr.totalNs()); // the invariant: exact, not approx
    EXPECT_EQ(attr.componentNs(MissComponent::Other), 140u);
}

TEST(Attribution, ChargesWhileInactiveAreIgnored)
{
    LatencyAttribution attr(MissComponent::names, MissComponent::Count);
    attr.charge(MissComponent::Wire, 999); // no sample open: no-op
    EXPECT_EQ(attr.samples(), 0u);
    EXPECT_EQ(attr.totalNs(), 0u);

    attr.begin(0);
    attr.cancel();
    EXPECT_EQ(attr.samples(), 0u); // cancelled samples leave no trace
}

TEST(Attribution, BulkRecordFoldsResidual)
{
    LatencyAttribution attr(EvictComponent::names,
                            EvictComponent::Count);
    std::array<Tick, LatencyAttribution::maxComponents> comp{};
    comp[EvictComponent::Wire] = 300;
    comp[EvictComponent::Ack] = 100;
    attr.record(/*totalNs=*/450, comp.data(), EvictComponent::Other);
    EXPECT_EQ(attr.componentNs(EvictComponent::Other), 50u);
    EXPECT_EQ(attr.totalNs(), 450u);
}

TEST(Attribution, TailSliceIsolatesSlowestSamples)
{
    LatencyAttribution attr(MissComponent::names, MissComponent::Count);
    // 98 fast samples dominated by fmem_check, 2 slow ones by retry.
    // (The slice is octave-granular and widens to cover at least the
    // requested fraction, so the slow octave needs enough samples to
    // satisfy it without spilling into the fast octave.)
    for (int i = 0; i < 98; ++i) {
        attr.begin(0);
        attr.charge(MissComponent::FmemCheck, 100);
        attr.end(100, MissComponent::Other);
    }
    for (int i = 0; i < 2; ++i) {
        attr.begin(0);
        attr.charge(MissComponent::Retry, 1'000'000);
        attr.end(1'000'000, MissComponent::Other);
    }

    LatencyAttribution::TailSlice p99 = attr.tail(0.01);
    EXPECT_EQ(p99.samples, 2u); // the slow octave alone covers 1%
    // The slow sample's component dominates the slice.
    EXPECT_GT(p99.componentNs[MissComponent::Retry],
              p99.componentNs[MissComponent::FmemCheck]);
    EXPECT_EQ(attr.componentNs(MissComponent::Other), 0u);
}

TEST(Attribution, ExportGaugesPublishesTotalsAndTail)
{
    LatencyAttribution attr(MissComponent::names, MissComponent::Count);
    attr.begin(0);
    attr.charge(MissComponent::Wire, 70);
    attr.end(100, MissComponent::Other);

    auto registry = std::make_shared<MetricRegistry>();
    attr.exportGauges(MetricScope(registry, "miss.attr"));
    const Gauge *wire = registry->findGauge("miss.attr.wire_ns");
    const Gauge *other = registry->findGauge("miss.attr.other_ns");
    const Gauge *tailTotal =
        registry->findGauge("miss.attr.p99.total_ns");
    ASSERT_NE(wire, nullptr);
    ASSERT_NE(other, nullptr);
    ASSERT_NE(tailTotal, nullptr);
    EXPECT_DOUBLE_EQ(wire->value(), 70.0);
    EXPECT_DOUBLE_EQ(other->value(), 30.0);
    EXPECT_DOUBLE_EQ(tailTotal->value(), 100.0);
}

// ---------------------------------------------------------------------
// Full-stack behavior: a fault-free Kona run attributes every miss ns
// with zero unexplained residual, and a chaos run journals the exact
// quarantine/readmit sequence the scenario scripts.
// ---------------------------------------------------------------------

TEST(Observability, FaultFreeRunHasNoUnexplainedMissNs)
{
    ChaosScenario scenario;
    for (const ChaosScenario &sc : builtinChaosScenarios()) {
        if (sc.name == "partial-partition")
            scenario = sc;
    }
    ASSERT_FALSE(scenario.name.empty());

    ChaosRunConfig cfg;
    cfg.faultFree = true;
    ChaosReport report = runChaosScenario(scenario, cfg);

    EXPECT_GT(report.missAttrSamples, 0u);
    EXPECT_GT(report.missAttrTotalNs, 0u);
    // Every advance on the miss path is bracketed by a charge, so the
    // residual "other" bucket is exactly zero — not just small.
    EXPECT_EQ(report.missAttrOtherNs, 0u);
    EXPECT_GT(report.shipAttrSamples, 0u);
    EXPECT_EQ(report.shipAttrOtherNs, 0u);
}

TEST(Observability, ChaosRunJournalsQuarantineSequence)
{
    ChaosScenario scenario;
    for (const ChaosScenario &sc : builtinChaosScenarios()) {
        if (sc.name == "partial-partition")
            scenario = sc;
    }
    ASSERT_FALSE(scenario.name.empty());

    TimeSeriesSampler sampler(/*intervalNs=*/1'000'000);
    ChaosRunConfig cfg;
    cfg.sampler = &sampler;
    ChaosReport report = runChaosScenario(scenario, cfg);

    // Node 2's health-transition 'to' sequence must walk the gray-
    // failure state machine: suspect -> quarantined -> readmitted ->
    // healthy, with strictly increasing epochs.
    std::vector<std::uint64_t> to;
    std::uint64_t lastEpoch = 0;
    for (const JournalEvent &ev : report.journal) {
        if (ev.kind != JournalKind::HealthTransition || ev.node != 2)
            continue;
        to.push_back(ev.b);
        EXPECT_GT(ev.epoch, lastEpoch);
        lastEpoch = ev.epoch;
    }
    ASSERT_EQ(to.size(), 4u);
    EXPECT_EQ(to[0], static_cast<std::uint64_t>(NodeHealth::Suspect));
    EXPECT_EQ(to[1],
              static_cast<std::uint64_t>(NodeHealth::Quarantined));
    EXPECT_EQ(to[2],
              static_cast<std::uint64_t>(NodeHealth::Readmitted));
    EXPECT_EQ(to[3], static_cast<std::uint64_t>(NodeHealth::Healthy));

    // The eviction path journals its give-ups against the partitioned
    // node while it was unreachable.
    bool sawRetriesExhausted = false;
    for (const JournalEvent &ev : report.journal)
        sawRetriesExhausted |=
            ev.kind == JournalKind::RetriesExhausted && ev.node == 2;
    EXPECT_TRUE(sawRetriesExhausted);

    // The time series spans the quarantine window: the transition
    // timestamps fall inside the sampled range.
    ASSERT_GT(sampler.windows(), 0u);
    Tick first = sampler.windowStartNs(0);
    Tick last = sampler.windowEndNs(sampler.windows() - 1);
    for (const JournalEvent &ev : report.journal) {
        if (ev.kind == JournalKind::HealthTransition && ev.node == 2) {
            EXPECT_GE(ev.ts, first);
            EXPECT_LE(ev.ts, last);
        }
    }

    // Attribution stays exact under faults too: the retry component
    // absorbs outage backoffs rather than leaking into "other".
    EXPECT_EQ(report.shipAttrOtherNs, 0u);
    EXPECT_EQ(report.missAttrOtherNs, 0u);
}

} // namespace
} // namespace kona
