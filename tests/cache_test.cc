/**
 * @file
 * Unit tests for src/cache: set-associative cache behaviour (LRU,
 * write-back, invariants across geometries) and the multi-level
 * hierarchy with its coherence event hooks — the foundation of Kona's
 * tracking primitives.
 */

#include <gtest/gtest.h>

#include "cache/hierarchy.h"
#include "cache/set_assoc_cache.h"
#include "common/rng.h"

namespace kona {
namespace {

CacheConfig
tinyCache(std::size_t sets, std::size_t ways,
          std::size_t block = cacheLineSize)
{
    CacheConfig cfg;
    cfg.name = "tiny";
    cfg.blockSize = block;
    cfg.associativity = ways;
    cfg.sizeBytes = sets * ways * block;
    return cfg;
}

TEST(SetAssocCache, HitAfterMiss)
{
    SetAssocCache cache(tinyCache(4, 2));
    CacheEviction ev;
    EXPECT_EQ(cache.access(0, AccessType::Read, ev),
              CacheOutcome::Miss);
    EXPECT_FALSE(ev.valid);
    EXPECT_EQ(cache.access(0, AccessType::Read, ev), CacheOutcome::Hit);
    EXPECT_EQ(cache.access(63, AccessType::Read, ev),
              CacheOutcome::Hit);   // same line
    EXPECT_EQ(cache.hits(), 2u);
    EXPECT_EQ(cache.misses(), 1u);
}

TEST(SetAssocCache, LruEvictionOrder)
{
    // One set, two ways: the third distinct block evicts the LRU.
    SetAssocCache cache(tinyCache(1, 2));
    CacheEviction ev;
    cache.access(0 * 64, AccessType::Read, ev);
    cache.access(1 * 64, AccessType::Read, ev);
    cache.access(0 * 64, AccessType::Read, ev);   // 0 is MRU
    cache.access(2 * 64, AccessType::Read, ev);
    ASSERT_TRUE(ev.valid);
    EXPECT_EQ(ev.blockAddr, 1u * 64);   // 1 was LRU
    EXPECT_FALSE(ev.dirty);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(cache.contains(64));
}

TEST(SetAssocCache, DirtyVictimOnWrite)
{
    SetAssocCache cache(tinyCache(1, 1));
    CacheEviction ev;
    cache.access(0, AccessType::Write, ev);
    cache.access(64, AccessType::Read, ev);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
    EXPECT_EQ(cache.writebacks(), 1u);
}

TEST(SetAssocCache, ReadThenWriteMarksDirty)
{
    SetAssocCache cache(tinyCache(1, 1));
    CacheEviction ev;
    cache.access(0, AccessType::Read, ev);
    cache.access(0, AccessType::Write, ev);   // hit, dirties the line
    cache.access(64, AccessType::Read, ev);
    ASSERT_TRUE(ev.valid);
    EXPECT_TRUE(ev.dirty);
}

TEST(SetAssocCache, InvalidateReportsDirtiness)
{
    SetAssocCache cache(tinyCache(2, 2));
    CacheEviction ev;
    cache.access(0, AccessType::Write, ev);
    cache.access(128, AccessType::Read, ev);
    auto d0 = cache.invalidateBlock(0);
    ASSERT_TRUE(d0.has_value());
    EXPECT_TRUE(*d0);
    auto d1 = cache.invalidateBlock(128);
    ASSERT_TRUE(d1.has_value());
    EXPECT_FALSE(*d1);
    EXPECT_FALSE(cache.invalidateBlock(999999).has_value());
}

TEST(SetAssocCache, FillDirtyInsertsOrUpgrades)
{
    SetAssocCache cache(tinyCache(1, 2));
    CacheEviction ev;
    cache.fillDirty(0, ev);
    EXPECT_TRUE(cache.contains(0));
    EXPECT_FALSE(ev.valid);
    cache.access(64, AccessType::Read, ev);
    cache.fillDirty(64, ev);   // upgrade clean -> dirty
    auto d = cache.invalidateBlock(64);
    ASSERT_TRUE(d.has_value());
    EXPECT_TRUE(*d);
}

TEST(SetAssocCache, LargeBlockGeometry)
{
    // FMem-style: 4KB blocks, 4 ways.
    SetAssocCache cache(tinyCache(8, 4, pageSize));
    CacheEviction ev;
    EXPECT_EQ(cache.access(100, AccessType::Read, ev),
              CacheOutcome::Miss);
    EXPECT_EQ(cache.access(pageSize - 1, AccessType::Read, ev),
              CacheOutcome::Hit);   // same 4KB block
    EXPECT_EQ(cache.access(pageSize, AccessType::Read, ev),
              CacheOutcome::Miss);
}

TEST(SetAssocCache, HoldsLineOfPageProbe)
{
    // Full-size L2-like geometry: 1024 sets, so page 7's 64 lines map
    // to 64 distinct sets.
    SetAssocCache cache(tinyCache(1024, 16));
    CacheEviction ev;
    EXPECT_FALSE(cache.holdsLineOfPage(7));
    cache.access(7 * pageSize + 9 * cacheLineSize, AccessType::Read,
                 ev);
    EXPECT_TRUE(cache.holdsLineOfPage(7));
    EXPECT_FALSE(cache.holdsLineOfPage(6));
    EXPECT_FALSE(cache.holdsLineOfPage(8));
    cache.invalidateBlock(7 * pageSize + 9 * cacheLineSize);
    EXPECT_FALSE(cache.holdsLineOfPage(7));
    // Probing must not disturb LRU order or counters.
    EXPECT_EQ(cache.accesses(), 1u);
}

TEST(SetAssocCache, FlushAllEmitsEverything)
{
    SetAssocCache cache(tinyCache(2, 2));
    CacheEviction ev;
    cache.access(0, AccessType::Write, ev);
    cache.access(64, AccessType::Read, ev);
    cache.access(128, AccessType::Write, ev);
    std::vector<CacheEviction> flushed;
    cache.flushAll(flushed);
    EXPECT_EQ(flushed.size(), 3u);
    int dirty = 0;
    for (const auto &e : flushed)
        dirty += e.dirty ? 1 : 0;
    EXPECT_EQ(dirty, 2);
    EXPECT_EQ(cache.contains(0), false);
}

TEST(SetAssocCache, BadGeometryIsFatal)
{
    CacheConfig cfg;
    cfg.sizeBytes = 100;   // not a multiple of block * assoc
    cfg.associativity = 8;
    cfg.blockSize = 64;
    EXPECT_THROW(SetAssocCache cache(cfg), PanicError);
}

/** Property sweep across geometries with random traffic. */
struct Geometry
{
    std::size_t sets, ways, block;
};

class CacheGeometryProperty
    : public ::testing::TestWithParam<Geometry>
{
};

TEST_P(CacheGeometryProperty, InvariantsUnderRandomTraffic)
{
    const Geometry &g = GetParam();
    SetAssocCache cache(tinyCache(g.sets, g.ways, g.block));
    Rng rng(99);
    CacheEviction ev;
    std::uint64_t victims = 0;
    for (int i = 0; i < 5000; ++i) {
        Addr addr = rng.below(g.sets * g.ways * g.block * 4);
        auto type = rng.chance(0.3) ? AccessType::Write
                                    : AccessType::Read;
        cache.access(addr, type, ev);
        if (ev.valid)
            ++victims;
    }
    EXPECT_TRUE(cache.checkInvariants());
    EXPECT_EQ(cache.hits() + cache.misses(), 5000u);
    EXPECT_LE(victims, cache.misses());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometryProperty,
    ::testing::Values(Geometry{1, 1, 64}, Geometry{4, 2, 64},
                      Geometry{16, 8, 64}, Geometry{8, 4, 4096},
                      Geometry{64, 16, 64}, Geometry{2, 4, 1024}));

/** Captures memory-side events for hierarchy tests. */
class EventLog : public MemorySideListener
{
  public:
    void
    onLineRequest(Addr lineAddr, AccessType type) override
    {
        requests.push_back({lineAddr, type});
    }
    void onWriteback(Addr lineAddr) override
    {
        writebacks.push_back(lineAddr);
    }

    std::vector<std::pair<Addr, AccessType>> requests;
    std::vector<Addr> writebacks;
};

HierarchyConfig
twoTinyLevels()
{
    HierarchyConfig cfg;
    cfg.levels = {
        {"L1", 2 * 64, 1, 64},    // 2 sets, direct mapped
        {"L2", 8 * 64, 2, 64},
    };
    return cfg;
}

TEST(Hierarchy, MissReachesMemoryOnce)
{
    CacheHierarchy hier(twoTinyLevels());
    EventLog log;
    hier.setListener(&log);
    hier.access(0, 8, AccessType::Read);
    ASSERT_EQ(log.requests.size(), 1u);
    EXPECT_EQ(log.requests[0].first, 0u);
    hier.access(0, 8, AccessType::Read);   // L1 hit now
    EXPECT_EQ(log.requests.size(), 1u);
    EXPECT_EQ(hier.memoryRequests(), 1u);
}

TEST(Hierarchy, AccessOneReportsHitLevel)
{
    CacheHierarchy hier(twoTinyLevels());
    EXPECT_EQ(hier.accessOne(0, AccessType::Read), -1);
    EXPECT_EQ(hier.accessOne(0, AccessType::Read), 0);
    // Evict line 0 from tiny L1 by touching a conflicting line.
    hier.accessOne(2 * 64, AccessType::Read);   // same L1 set as 0
    EXPECT_EQ(hier.accessOne(0, AccessType::Read), 1);   // L2 hit
}

TEST(Hierarchy, DirtyWritebackPropagatesToMemory)
{
    CacheHierarchy hier(twoTinyLevels());
    EventLog log;
    hier.setListener(&log);
    hier.access(0, 8, AccessType::Write);
    hier.flushAll();
    ASSERT_EQ(log.writebacks.size(), 1u);
    EXPECT_EQ(log.writebacks[0], 0u);
    EXPECT_EQ(hier.memoryWritebacks(), 1u);
}

TEST(Hierarchy, CleanFlushEmitsNoWritebacks)
{
    CacheHierarchy hier(twoTinyLevels());
    EventLog log;
    hier.setListener(&log);
    hier.access(0, 8, AccessType::Read);
    hier.flushAll();
    EXPECT_TRUE(log.writebacks.empty());
}

TEST(Hierarchy, SnoopFlushesDirtyLine)
{
    CacheHierarchy hier(twoTinyLevels());
    EventLog log;
    hier.setListener(&log);
    hier.access(64, 8, AccessType::Write);
    hier.snoopLine(64);
    ASSERT_EQ(log.writebacks.size(), 1u);
    EXPECT_EQ(log.writebacks[0], 64u);
    // The line is gone: next access misses to memory again.
    log.requests.clear();
    hier.access(64, 8, AccessType::Read);
    EXPECT_EQ(log.requests.size(), 1u);
}

TEST(Hierarchy, SnoopCleanLineIsSilent)
{
    CacheHierarchy hier(twoTinyLevels());
    EventLog log;
    hier.setListener(&log);
    hier.access(0, 8, AccessType::Read);
    hier.snoopLine(0);
    EXPECT_TRUE(log.writebacks.empty());
}

TEST(Hierarchy, SnoopPageCoversAllLines)
{
    CacheHierarchy hier;   // full-size default hierarchy
    EventLog log;
    hier.setListener(&log);
    // Dirty three lines of page 5.
    Addr base = 5 * pageSize;
    hier.access(base, 8, AccessType::Write);
    hier.access(base + 640, 8, AccessType::Write);
    hier.access(base + 4032, 8, AccessType::Write);
    hier.snoopPage(5);
    EXPECT_EQ(log.writebacks.size(), 3u);
}

TEST(Hierarchy, MultiLineAccessSplits)
{
    CacheHierarchy hier(twoTinyLevels());
    EventLog log;
    hier.setListener(&log);
    hier.access(32, 64, AccessType::Read);   // straddles two lines
    EXPECT_EQ(log.requests.size(), 2u);
}

TEST(Hierarchy, WritebackMarksCorrectLineAddress)
{
    // Dirty lines evicted by capacity pressure must reach memory with
    // their own (line-aligned) address.
    HierarchyConfig cfg;
    cfg.levels = {{"L1", 64, 1, 64}};   // a single-line cache
    CacheHierarchy hier(cfg);
    EventLog log;
    hier.setListener(&log);
    hier.access(3 * 64 + 7, 4, AccessType::Write);
    hier.access(900 * 64, 4, AccessType::Read);   // evicts the dirty line
    ASSERT_EQ(log.writebacks.size(), 1u);
    EXPECT_EQ(log.writebacks[0], 3u * 64);
}

TEST(Hierarchy, ScaledConfigShapesPreserved)
{
    HierarchyConfig scaled = HierarchyConfig::scaled();
    ASSERT_EQ(scaled.levels.size(), 3u);
    EXPECT_LT(scaled.levels[0].sizeBytes, scaled.levels[1].sizeBytes);
    EXPECT_LT(scaled.levels[1].sizeBytes, scaled.levels[2].sizeBytes);
    CacheHierarchy hier(scaled);   // constructible
    EXPECT_EQ(hier.numLevels(), 3u);
}

} // namespace
} // namespace kona
