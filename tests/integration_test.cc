/**
 * @file
 * Integration tests: full workloads running transparently on the Kona
 * and VM runtimes over a simulated rack, cross-checked against plain
 * memory; performance ordering between systems; failure injection;
 * and the eviction handler's cost breakdown.
 */

#include <gtest/gtest.h>

#include "core/kona_runtime.h"
#include "core/vm_runtime.h"
#include "workloads/kv_store.h"
#include "workloads/registry.h"
#include "workloads/tpcc.h"

namespace kona {
namespace {

/** A rack with three memory nodes. */
struct Rack
{
    Rack() : controller(1 * MiB)
    {
        for (NodeId id = 1; id <= 3; ++id) {
            nodes.push_back(std::make_unique<MemoryNode>(
                fabric, id, 128 * MiB));
            controller.registerNode(*nodes.back());
        }
    }

    Fabric fabric;
    Controller controller;
    std::vector<std::unique_ptr<MemoryNode>> nodes;
};

WorkloadContext
contextFor(RemoteMemoryRuntime &runtime)
{
    return WorkloadContext(
        runtime,
        [&runtime](std::size_t s, std::size_t a) {
            return runtime.allocate(s, a);
        },
        [&runtime](Addr a) { runtime.deallocate(a); });
}

KonaConfig
smallKona()
{
    KonaConfig cfg;
    cfg.fpga.vfmemSize = 128 * MiB;
    cfg.fpga.fmemSize = 4 * MiB;
    cfg.hierarchy = HierarchyConfig::scaled();
    return cfg;
}

TEST(Integration, KvWorkloadCorrectOnKona)
{
    Rack rack;
    KonaConfig cfg = smallKona();
    cfg.fpga.fmemSize = 256 * KiB;   // far below the ~700KB footprint
    KonaRuntime runtime(rack.fabric, rack.controller, 0, cfg);
    WorkloadContext context = contextFor(runtime);
    KvWorkload::Params params;
    params.numKeys = 3000;
    KvWorkload workload(context, params);
    workload.setup();
    workload.run(6000);
    EXPECT_TRUE(workload.verifyAll());
    RuntimeStats stats = runtime.stats();
    EXPECT_EQ(stats.majorFaults, 0u);
    EXPECT_GT(stats.remoteFetches, 0u);
    EXPECT_GT(stats.pagesEvicted, 0u);
}

TEST(Integration, KvWorkloadCorrectOnVm)
{
    Rack rack;
    VmConfig cfg;
    cfg.localCachePages = 1024;   // 4MB cache
    cfg.hierarchy = HierarchyConfig::scaled();
    VmRuntime runtime(rack.fabric, rack.controller, 0, cfg);
    WorkloadContext context = contextFor(runtime);
    KvWorkload::Params params;
    params.numKeys = 3000;
    KvWorkload workload(context, params);
    workload.setup();
    workload.run(6000);
    EXPECT_TRUE(workload.verifyAll());
    EXPECT_GT(runtime.stats().majorFaults, 0u);
}

TEST(Integration, TpccConsistentOnKona)
{
    Rack rack;
    KonaRuntime runtime(rack.fabric, rack.controller, 0, smallKona());
    WorkloadContext context = contextFor(runtime);
    TpccWorkload::Params params;
    params.items = 2000;
    params.customers = 2000;
    params.maxOrders = 10000;
    TpccWorkload workload(context, params);
    workload.setup();
    workload.run(3000);
    EXPECT_TRUE(workload.checkConsistency());
}

TEST(Integration, KonaFasterThanVmOnSameWork)
{
    // The Fig 7 shape at test scale: same access pattern, 50%-ish
    // local cache, Kona beats the page-fault-based runtime clearly.
    auto runKv = [](RemoteMemoryRuntime &runtime) {
        WorkloadContext context = contextFor(runtime);
        KvWorkload::Params params;
        params.numKeys = 2000;
        params.seed = 77;
        KvWorkload workload(context, params);
        workload.setup();
        workload.run(4000);
        runtime.writebackAll();
        return runtime.elapsed();
    };

    Rack rackA;
    KonaConfig kcfg = smallKona();
    kcfg.fpga.fmemSize = 128 * KiB;   // ~25% of the footprint
    KonaRuntime kona(rackA.fabric, rackA.controller, 0, kcfg);
    Tick konaTime = runKv(kona);

    Rack rackB;
    VmConfig vcfg;
    vcfg.localCachePages = 128 * KiB / pageSize;
    vcfg.hierarchy = HierarchyConfig::scaled();
    VmRuntime vm(rackB.fabric, rackB.controller, 0, vcfg);
    Tick vmTime = runKv(vm);

    EXPECT_GT(vmTime, 2 * konaTime)
        << "Kona " << konaTime << "ns vs VM " << vmTime << "ns";
}

TEST(Integration, InfiniswapSlowerThanLegoOs)
{
    auto runOnce = [](VmPersonality personality) {
        Rack rack;
        VmConfig cfg;
        cfg.personality = personality;
        cfg.localCachePages = 256;
        cfg.hierarchy = HierarchyConfig::scaled();
        VmRuntime runtime(rack.fabric, rack.controller, 0, cfg);
        WorkloadContext context = contextFor(runtime);
        KvWorkload::Params params;
        params.numKeys = 1500;
        KvWorkload workload(context, params);
        workload.setup();
        workload.run(2000);
        return runtime.elapsed();
    };
    Tick lego = runOnce(VmPersonality::LegoOs);
    Tick infini = runOnce(VmPersonality::Infiniswap);
    EXPECT_GT(infini, 2 * lego);
}

TEST(Integration, EvictionAmplificationKonaVsVm)
{
    // Same one-line-per-page dirty pattern; compare wire traffic.
    auto dirtyBytes = [](RemoteMemoryRuntime &runtime) {
        Addr a = runtime.allocate(512 * pageSize, pageSize);
        for (int p = 0; p < 512; ++p)
            runtime.store<std::uint64_t>(a + p * pageSize, p);
        runtime.writebackAll();
        return runtime.stats().evictionBytesOnWire;
    };

    Rack rackA;
    KonaRuntime kona(rackA.fabric, rackA.controller, 0, smallKona());
    auto konaBytes = dirtyBytes(kona);

    Rack rackB;
    VmConfig vcfg;
    vcfg.localCachePages = 1024;
    vcfg.hierarchy = HierarchyConfig::scaled();
    VmRuntime vm(rackB.fabric, rackB.controller, 0, vcfg);
    auto vmBytes = dirtyBytes(vm);

    // One dirty line/page: VM ships 4KB, Kona ships ~72B -> 50x+.
    EXPECT_GT(vmBytes, 40 * konaBytes);
}

TEST(Integration, NetworkOutageIsReportedNotSilent)
{
    Rack rack;
    KonaRuntime runtime(rack.fabric, rack.controller, 0, smallKona());
    Addr a = runtime.allocate(16 * pageSize, pageSize);
    runtime.store<std::uint64_t>(a, 1);
    runtime.writebackAll();

    for (auto &node : rack.nodes)
        rack.fabric.setNodeDown(node->id(), true);
    EXPECT_THROW(runtime.load<std::uint64_t>(a), FatalError);

    // After the outage resolves, the data is intact.
    for (auto &node : rack.nodes)
        rack.fabric.setNodeDown(node->id(), false);
    EXPECT_EQ(runtime.load<std::uint64_t>(a), 1u);
}

TEST(Integration, WaitRetryPolicySurvivesTransientOutage)
{
    Rack rack;
    KonaConfig cfg = smallKona();
    cfg.failurePolicy = FailurePolicy::WaitRetry;
    cfg.retry.initialBackoffNs = 50000;
    KonaRuntime runtime(rack.fabric, rack.controller, 0, cfg);
    Addr a = runtime.allocate(4 * pageSize, pageSize);
    runtime.store<std::uint64_t>(a, 42);
    runtime.writebackAll();

    // Outage starts; the observer resolves it after three backoffs.
    for (auto &node : rack.nodes)
        rack.fabric.setNodeDown(node->id(), true);
    runtime.setOutageObserver([&rack](std::size_t attempt) {
        if (attempt >= 2) {
            for (auto &node : rack.nodes)
                rack.fabric.setNodeDown(node->id(), false);
        }
    });

    Tick before = runtime.appTime();
    EXPECT_EQ(runtime.load<std::uint64_t>(a), 42u);
    EXPECT_EQ(runtime.outageRetries(), 3u);
    // Three 50us backoffs were charged to the application.
    EXPECT_GE(runtime.appTime() - before, 150000u);
}

TEST(Integration, WaitRetryEscalatesAfterMaxRetries)
{
    Rack rack;
    KonaConfig cfg = smallKona();
    cfg.failurePolicy = FailurePolicy::WaitRetry;
    cfg.retry.initialBackoffNs = 1000;
    cfg.retry.maxAttempts = 5;
    KonaRuntime runtime(rack.fabric, rack.controller, 0, cfg);
    Addr a = runtime.allocate(pageSize, pageSize);
    for (auto &node : rack.nodes)
        rack.fabric.setNodeDown(node->id(), true);
    EXPECT_THROW(runtime.load<std::uint64_t>(a), FatalError);
    EXPECT_EQ(runtime.outageRetries(), 5u);
    for (auto &node : rack.nodes)
        rack.fabric.setNodeDown(node->id(), false);
}

TEST(Integration, NetworkDelaySlowsButDoesNotBreak)
{
    Rack rack;
    KonaRuntime runtime(rack.fabric, rack.controller, 0, smallKona());
    Addr a = runtime.allocate(64 * pageSize, pageSize);
    for (int p = 0; p < 32; ++p)
        runtime.store<std::uint64_t>(a + p * pageSize, p);

    for (auto &node : rack.nodes)
        rack.fabric.setNodeDelay(node->id(), 50000);
    Tick before = runtime.appTime();
    // Cold pages: fetches now pay the extra 50us.
    std::uint64_t sink = 0;
    for (int p = 32; p < 40; ++p)
        sink += runtime.load<std::uint64_t>(a + p * pageSize);
    (void)sink;
    EXPECT_GT(runtime.appTime() - before, 8 * 50000u);
    for (int p = 0; p < 32; ++p)
        EXPECT_EQ(runtime.load<std::uint64_t>(a + p * pageSize),
                  static_cast<std::uint64_t>(p));
}

TEST(Integration, EvictionBreakdownAccounted)
{
    Rack rack;
    KonaRuntime runtime(rack.fabric, rack.controller, 0, smallKona());
    Addr a = runtime.allocate(128 * pageSize, pageSize);
    for (int p = 0; p < 128; ++p) {
        for (int l = 0; l < 4; ++l) {
            runtime.store<std::uint64_t>(
                a + p * pageSize + l * cacheLineSize, p * 64 + l);
        }
    }
    runtime.writebackAll();
    const EvictionBreakdown &bd =
        runtime.evictionHandler().breakdown();
    EXPECT_GT(bd.copyNs, 0.0);
    EXPECT_GT(bd.rdmaNs, 0.0);
    EXPECT_GT(bd.unpackNs, 0.0);
    EXPECT_GT(bd.waitNs, 0.0);
    EXPECT_GT(bd.bitmapNs, 0.0);
    EXPECT_GT(bd.totalNs(), bd.rdmaNs);
}

TEST(Integration, BackgroundEvictionStaysOffCriticalPath)
{
    // With the background pump active, forced (critical-path)
    // evictions should be rare: background time >> eviction share of
    // app time.
    Rack rack;
    KonaConfig cfg = smallKona();
    cfg.fpga.fmemSize = 1 * MiB;
    cfg.evict.pumpPeriod = 32;
    KonaRuntime runtime(rack.fabric, rack.controller, 0, cfg);
    Addr a = runtime.allocate(8 * MiB, pageSize);
    for (Addr p = 0; p < 8 * MiB / pageSize; ++p)
        runtime.store<std::uint64_t>(a + p * pageSize, p);
    EXPECT_GT(runtime.backgroundClock().now(), 0u);
    EXPECT_GT(runtime.stats().pagesEvicted, 1000u);
}

TEST(Integration, SameWorkloadSameClockDeterminism)
{
    auto elapsed = []() {
        Rack rack;
        KonaRuntime runtime(rack.fabric, rack.controller, 0,
                            smallKona());
        WorkloadContext context = contextFor(runtime);
        KvWorkload::Params params;
        params.numKeys = 1000;
        KvWorkload workload(context, params);
        workload.setup();
        workload.run(2000);
        return runtime.elapsed();
    };
    EXPECT_EQ(elapsed(), elapsed());
}

} // namespace
} // namespace kona
