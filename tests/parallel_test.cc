/**
 * @file
 * Differential bit-identity tests for the parallel simulation engine
 * (DESIGN.md §16 "Parallel simulation").
 *
 * The contract under test: running the same per-compute-node programs
 * through ParallelDriver at ANY shard-concurrency cap produces a run
 * that is indistinguishable from the t=1 reference schedule — the
 * metric registry's full fingerprint, the final bytes of every span,
 * the canonical cross-shard event log, and every runtime's journal
 * sequence must all match exactly. The matrix covers five seeds, four
 * thread counts, and six workload shapes: sequential, strided,
 * uniform-random, eviction-heavy pointer chase, the coherence litmus
 * suite replayed through scripted gate sections, and a random mix
 * under a deterministic partial partition with replication failover.
 */

#include <gtest/gtest.h>

#include "coherence/litmus.h"
#include "common/rng.h"
#include "rack/multi_rack.h"
#include "rack/parallel_driver.h"
#include "telemetry/event_journal.h"
#include "telemetry/metric_registry.h"

namespace kona {
namespace {

constexpr std::uint64_t kSeeds[] = {1, 42, 0x5eedULL, 0xdecafULL,
                                    0xab5aULL};
constexpr unsigned kThreadCounts[] = {1, 2, 4, 8};

MultiRackConfig
smallRack(std::size_t computeNodes)
{
    MultiRackConfig cfg;
    cfg.computeNodes = computeNodes;
    cfg.memoryNodes = 3;
    cfg.memoryBytes = 64 * MiB;
    cfg.slabSize = 1 * MiB;
    cfg.runtime.fpga.vfmemSize = 64 * MiB;
    cfg.runtime.fpga.fmemSize = 8 * MiB;
    return cfg;
}

std::uint64_t
fnvMix(std::uint64_t h, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        h ^= (v >> (8 * i)) & 0xff;
        h *= 1099511628211ULL;
    }
    return h;
}

/** Everything a run can leak about its schedule. */
struct Signature
{
    std::uint64_t fingerprint = 0; ///< MetricRegistry::fingerprint()
    std::uint64_t content = 0;     ///< bytes of every span, in order
    std::uint64_t events = 0;      ///< canonical log + runtime journals

    bool operator==(const Signature &) const = default;
};

enum class Mix { Seq, Stride, Random, Graph, Chaos };

const char *
mixName(Mix mix)
{
    switch (mix) {
    case Mix::Seq: return "seq";
    case Mix::Stride: return "stride";
    case Mix::Random: return "random";
    case Mix::Graph: return "graph";
    case Mix::Chaos: return "chaos";
    }
    return "?";
}

/**
 * One full run of @p mix at @p threads: fresh rack, one private span
 * per compute node, the mix's access program on every shard, then the
 * signature. Seeds only vary written values for the deterministic
 * shapes (seq/stride) and drive the access stream for the random ones,
 * so every seed yields a distinct but reproducible run.
 */
Signature
runMix(Mix mix, std::uint64_t seed, unsigned threads)
{
    MultiRackConfig cfg = smallRack(3);
    if (mix == Mix::Chaos) {
        cfg.runtime.replicationFactor = 1;
        cfg.runtime.failurePolicy = FailurePolicy::WaitRetry;
    }
    MultiRack rack(cfg);
    if (mix == Mix::Chaos) {
        // Deterministic partial partition: memory node 2 never
        // answers compute node 101 (timeouts, not probabilistic
        // drops), so fetches and writebacks fail over to replicas.
        // The failure detector is parked — fail-stop rebuilds are
        // outside the bit-identity contract.
        rack.controller().setFailureThreshold(1'000'000);
        rack.faults().profile(2).blockedSources.push_back(
            MultiRack::firstComputeNode);
    }

    const std::size_t span = mix == Mix::Graph ? 12 * MiB : 1 * MiB;
    const std::uint64_t ops = mix == Mix::Graph ? 1'200 : 3'000;

    std::vector<Addr> bases;
    for (std::size_t i = 0; i < rack.runtimeCount(); ++i)
        bases.push_back(rack.runtime(i).allocate(span, pageSize));

    // The graph mix chases one permutation cycle (> FMem, so the
    // demand-fetch + eviction machinery runs the whole time). Built
    // once here; each shard writes it into its own span in-program.
    std::vector<std::uint64_t> chase;
    if (mix == Mix::Graph) {
        chase.resize(span / 8);
        for (std::size_t i = 0; i < chase.size(); ++i)
            chase[i] = i;
        Rng rng(seed ^ 0x9a4fULL);
        for (std::size_t i = chase.size() - 1; i > 0; --i) {
            std::size_t j = rng.below(i);
            std::swap(chase[i], chase[j]);
        }
    }

    Signature sig;
    std::uint64_t h = 1469598103934665603ULL;
    {
        ParallelDriver driver(rack, threads);
        driver.run([&](std::size_t shard, KonaRuntime &rt) {
            Addr base = bases[shard];
            std::uint64_t buf = 0;
            if (mix == Mix::Graph) {
                for (std::size_t off = 0; off < span; off += pageSize)
                    rt.write(base + off, chase.data() + off / 8,
                             pageSize);
                std::uint64_t idx = shard;
                for (std::uint64_t i = 0; i < ops; ++i) {
                    rt.read(base + idx * 8, &buf, sizeof(buf));
                    idx = buf;
                }
                return;
            }
            // Resident mixes: touch every page first, then run.
            std::vector<std::uint8_t> page(pageSize);
            for (std::size_t off = 0; off < span; off += pageSize)
                rt.read(base + off, page.data(), pageSize);
            Rng rng(seed + shard);
            std::size_t off = 0;
            for (std::uint64_t i = 0; i < ops; ++i) {
                Addr addr;
                bool write;
                switch (mix) {
                case Mix::Seq:
                    addr = base + off;
                    off = (off + cacheLineSize) % span;
                    write = (i & 3) == 3;
                    break;
                case Mix::Stride:
                    addr = base + off;
                    off += 1024;
                    if (off >= span)
                        off = (off + cacheLineSize) % 1024;
                    write = (i & 3) == 1;
                    break;
                default: // Random, Chaos
                    addr = base + rng.below(span / 8) * 8;
                    write = rng.chance(0.3);
                    break;
                }
                if (write) {
                    buf = (i << 8) ^ shard ^ seed;
                    rt.write(addr, &buf, sizeof(buf));
                } else {
                    rt.read(addr, &buf, sizeof(buf));
                }
            }
        });

        sig.fingerprint = rack.metrics()->fingerprint();
        for (const GateRecord &rec : driver.canonicalLog()) {
            h = fnvMix(h, rec.key.stamp);
            h = fnvMix(h, rec.key.shard);
            h = fnvMix(h, rec.key.seq);
            h = fnvMix(h, static_cast<std::uint64_t>(rec.kind));
        }
        h = fnvMix(h, driver.gate().recordsDropped());
    } // detach the gate before the main-thread readback below

    for (std::size_t i = 0; i < rack.runtimeCount(); ++i) {
        for (const JournalEvent &ev :
             rack.runtime(i).eventJournal()->snapshot()) {
            h = fnvMix(h, ev.ts);
            h = fnvMix(h, static_cast<std::uint64_t>(ev.kind));
            h = fnvMix(h, ev.node);
            h = fnvMix(h, ev.a);
            h = fnvMix(h, ev.b);
            h = fnvMix(h, ev.epoch);
        }
    }
    sig.events = h;

    std::uint64_t c = 1469598103934665603ULL;
    std::vector<std::uint8_t> page(pageSize);
    for (std::size_t i = 0; i < rack.runtimeCount(); ++i) {
        for (std::size_t off = 0; off < span; off += pageSize) {
            rack.runtime(i).read(bases[i] + off, page.data(), pageSize);
            for (std::size_t b = 0; b < pageSize; ++b) {
                c ^= page[b];
                c *= 1099511628211ULL;
            }
        }
    }
    sig.content = c;
    return sig;
}

class ParallelIdentity : public ::testing::TestWithParam<Mix>
{};

TEST_P(ParallelIdentity, BitIdenticalAcrossThreadCounts)
{
    Mix mix = GetParam();
    for (std::uint64_t seed : kSeeds) {
        Signature reference = runMix(mix, seed, 1);
        for (unsigned threads : kThreadCounts) {
            if (threads == 1)
                continue;
            Signature sig = runMix(mix, seed, threads);
            EXPECT_EQ(sig.fingerprint, reference.fingerprint)
                << mixName(mix) << " seed " << seed << " t=" << threads
                << ": metric fingerprints diverge";
            EXPECT_EQ(sig.content, reference.content)
                << mixName(mix) << " seed " << seed << " t=" << threads
                << ": memory content diverges";
            EXPECT_EQ(sig.events, reference.events)
                << mixName(mix) << " seed " << seed << " t=" << threads
                << ": event sequences diverge";
            if (sig != reference)
                return; // one mix's full diagnosis is enough
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Mixes, ParallelIdentity,
                         ::testing::Values(Mix::Seq, Mix::Stride,
                                           Mix::Random, Mix::Graph,
                                           Mix::Chaos),
                         [](const auto &info) {
                             return mixName(info.param);
                         });

/**
 * The litmus suite replayed through scripted gate sections must
 * reproduce runLitmus()'s outcome exactly — same loads checked, same
 * order-sensitive value hash — at every thread count.
 */
TEST(ParallelIdentityLitmus, ScriptedReplayMatchesSequential)
{
    const auto &scenarios = litmusScenarios();
    for (std::uint64_t seed : kSeeds) {
        const LitmusScenario &scenario =
            scenarios[seed % scenarios.size()];

        LitmusOutcome reference;
        {
            MultiRack rack(smallRack(4));
            Addr base = rack.mapShared("litmus", 64 * KiB);
            reference = runLitmus(scenario, rack, base, seed, 2);
        }
        ASSERT_TRUE(reference.match)
            << scenario.name << ": " << reference.divergence;

        for (unsigned threads : kThreadCounts) {
            MultiRack rack(smallRack(4));
            Addr base = rack.mapShared("litmus", 64 * KiB);
            LitmusOutcome out =
                runLitmusParallel(scenario, rack, base, seed, threads, 2);
            EXPECT_TRUE(out.match)
                << scenario.name << " t=" << threads << ": "
                << out.divergence;
            EXPECT_EQ(out.loadsChecked, reference.loadsChecked)
                << scenario.name << " t=" << threads;
            EXPECT_EQ(out.valueHash, reference.valueHash)
                << scenario.name << " t=" << threads
                << ": observed-value stream diverges";
        }
    }
}

/**
 * Gate transparency: a single-compute-node program run under the
 * driver (every choke point taking real gate sections) must leave the
 * rack in exactly the state the same program produces with no gate
 * attached. This pins down that sections only ORDER work and never
 * change what the work does.
 */
TEST(ParallelIdentityGate, SingleShardMatchesUngated)
{
    auto program = [](KonaRuntime &rt, Addr base) {
        Rng rng(0x6a7eULL);
        std::uint64_t buf = 0;
        for (std::uint64_t i = 0; i < 4'000; ++i) {
            Addr addr = base + rng.below((2 * MiB) / 8) * 8;
            if (rng.chance(0.25)) {
                buf = i;
                rt.write(addr, &buf, sizeof(buf));
            } else {
                rt.read(addr, &buf, sizeof(buf));
            }
        }
    };

    std::uint64_t ungated = 0;
    {
        MultiRack rack(smallRack(1));
        Addr base = rack.runtime(0).allocate(2 * MiB, pageSize);
        program(rack.runtime(0), base);
        ungated = rack.metrics()->fingerprint();
    }

    std::uint64_t gated = 0;
    {
        MultiRack rack(smallRack(1));
        Addr base = rack.runtime(0).allocate(2 * MiB, pageSize);
        ParallelDriver driver(rack, 1);
        driver.run([&](std::size_t, KonaRuntime &rt) {
            program(rt, base);
        });
        gated = rack.metrics()->fingerprint();
    }

    EXPECT_EQ(gated, ungated)
        << "gate sections changed the simulation, not just its order";
}

} // namespace
} // namespace kona
