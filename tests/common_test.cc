/**
 * @file
 * Unit tests for src/common: types/geometry helpers, logging error
 * types, the deterministic RNG, the Zipf generator and the statistics
 * primitives.
 */

#include <gtest/gtest.h>

#include "common/latency.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/sim_clock.h"
#include "common/stats.h"
#include "common/types.h"

namespace kona {
namespace {

TEST(Types, AlignDownAndUp)
{
    EXPECT_EQ(alignDown(0, 64), 0u);
    EXPECT_EQ(alignDown(63, 64), 0u);
    EXPECT_EQ(alignDown(64, 64), 64u);
    EXPECT_EQ(alignDown(4097, 4096), 4096u);
    EXPECT_EQ(alignUp(0, 64), 0u);
    EXPECT_EQ(alignUp(1, 64), 64u);
    EXPECT_EQ(alignUp(64, 64), 64u);
    EXPECT_EQ(alignUp(4095, 4096), 4096u);
}

TEST(Types, PageAndLineGeometry)
{
    EXPECT_EQ(pageNumber(0), 0u);
    EXPECT_EQ(pageNumber(4095), 0u);
    EXPECT_EQ(pageNumber(4096), 1u);
    EXPECT_EQ(lineInPage(0), 0u);
    EXPECT_EQ(lineInPage(63), 0u);
    EXPECT_EQ(lineInPage(64), 1u);
    EXPECT_EQ(lineInPage(4095), 63u);
    EXPECT_EQ(linesPerPage, 64u);
}

TEST(Types, WithinOneLine)
{
    EXPECT_TRUE(withinOneLine(0, 64));
    EXPECT_TRUE(withinOneLine(10, 54));
    EXPECT_FALSE(withinOneLine(10, 55));
    EXPECT_FALSE(withinOneLine(63, 2));
    EXPECT_TRUE(withinOneLine(64, 1));
}

TEST(Logging, FatalThrowsFatalError)
{
    EXPECT_THROW(fatal("bad config ", 42), FatalError);
}

TEST(Logging, PanicThrowsPanicError)
{
    EXPECT_THROW(panic("invariant"), PanicError);
}

TEST(Logging, AssertMacro)
{
    EXPECT_NO_THROW(KONA_ASSERT(1 + 1 == 2, "fine"));
    EXPECT_THROW(KONA_ASSERT(1 + 1 == 3, "broken"), PanicError);
}

TEST(Logging, LogLevelFiltersBySeverity)
{
    using ::testing::internal::CaptureStderr;
    using ::testing::internal::GetCapturedStderr;

    // "warn" suppresses info/debug but keeps warnings.
    setLogLevel("warn");
    CaptureStderr();
    inform("info suppressed");
    debugLog("debug suppressed");
    warn("warning kept");
    std::string out = GetCapturedStderr();
    EXPECT_EQ(out.find("suppressed"), std::string::npos);
    EXPECT_NE(out.find("warning kept"), std::string::npos);

    // "debug" lets verbose diagnostics through.
    setLogLevel("debug");
    CaptureStderr();
    debugLog("verbose line");
    EXPECT_NE(GetCapturedStderr().find("verbose line"),
              std::string::npos);

    // Unknown strings are ignored: the level stays "debug".
    setLogLevel("bogus");
    CaptureStderr();
    debugLog("still verbose");
    EXPECT_NE(GetCapturedStderr().find("still verbose"),
              std::string::npos);

    // "quiet" silences everything except fatal/panic.
    setLogLevel("quiet");
    CaptureStderr();
    warn("warning suppressed");
    EXPECT_THROW(panic("panic always prints"), PanicError);
    out = GetCapturedStderr();
    EXPECT_EQ(out.find("warning suppressed"), std::string::npos);
    EXPECT_NE(out.find("panic always prints"), std::string::npos);

    setLogLevel("info");   // restore the default for other tests
}

TEST(SimClock, AdvanceAndAdvanceTo)
{
    SimClock clock;
    EXPECT_EQ(clock.now(), 0u);
    clock.advance(100);
    EXPECT_EQ(clock.now(), 100u);
    clock.advanceTo(50);   // never goes backwards
    EXPECT_EQ(clock.now(), 100u);
    clock.advanceTo(250);
    EXPECT_EQ(clock.now(), 250u);
    clock.reset();
    EXPECT_EQ(clock.now(), 0u);
}

TEST(Rng, DeterministicFromSeed)
{
    Rng a(123), b(123), c(456);
    bool anyDifferent = false;
    for (int i = 0; i < 100; ++i) {
        auto va = a.next();
        EXPECT_EQ(va, b.next());
        if (va != c.next())
            anyDifferent = true;
    }
    EXPECT_TRUE(anyDifferent);
}

TEST(Rng, BelowStaysInBounds)
{
    Rng rng(7);
    for (std::uint64_t bound : {1ULL, 2ULL, 10ULL, 1000ULL, 1ULL << 40}) {
        for (int i = 0; i < 200; ++i)
            EXPECT_LT(rng.below(bound), bound);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng rng(9);
    bool sawLo = false, sawHi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.range(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        sawLo |= v == 5;
        sawHi |= v == 8;
    }
    EXPECT_TRUE(sawLo);
    EXPECT_TRUE(sawHi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(11);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Zipf, UniformThetaCoversSpace)
{
    Rng rng(13);
    ZipfGenerator zipf(100, 0.0, rng);
    std::vector<int> counts(100, 0);
    for (int i = 0; i < 20000; ++i)
        ++counts[zipf.next()];
    for (int c : counts)
        EXPECT_GT(c, 0);
}

TEST(Zipf, SkewFavorsSmallKeys)
{
    Rng rng(17);
    ZipfGenerator zipf(10000, 0.9, rng);
    std::uint64_t low = 0, total = 50000;
    for (std::uint64_t i = 0; i < total; ++i) {
        if (zipf.next() < 100)
            ++low;
    }
    // The hottest 1% of keys should draw far more than 1% of accesses.
    EXPECT_GT(low, total / 10);
}

TEST(IntDistribution, MeanAndCdf)
{
    IntDistribution dist;
    dist.record(1, 3);   // three samples of value 1
    dist.record(4, 1);
    EXPECT_EQ(dist.samples(), 4u);
    EXPECT_DOUBLE_EQ(dist.mean(), (3.0 * 1 + 4) / 4.0);
    EXPECT_DOUBLE_EQ(dist.cdfAt(0), 0.0);
    EXPECT_DOUBLE_EQ(dist.cdfAt(1), 0.75);
    EXPECT_DOUBLE_EQ(dist.cdfAt(3), 0.75);
    EXPECT_DOUBLE_EQ(dist.cdfAt(4), 1.0);
}

TEST(IntDistribution, Quantiles)
{
    IntDistribution dist;
    for (std::uint64_t v = 1; v <= 100; ++v)
        dist.record(v);
    EXPECT_EQ(dist.quantile(0.5), 50u);
    EXPECT_EQ(dist.quantile(0.99), 99u);
    EXPECT_EQ(dist.quantile(1.0), 100u);
}

TEST(IntDistribution, QuantileEdgeCases)
{
    IntDistribution dist;
    for (std::uint64_t v = 1; v <= 100; ++v)
        dist.record(v);
    // A vanishingly small q still selects the smallest sample, and
    // q = 1.0 is the exact maximum.
    EXPECT_EQ(dist.quantile(0.0001), 1u);
    EXPECT_EQ(dist.quantile(1.0), 100u);
    // Out-of-range q and empty distributions are caller bugs.
    EXPECT_THROW(dist.quantile(0.0), PanicError);
    EXPECT_THROW(dist.quantile(1.5), PanicError);
    EXPECT_THROW(dist.quantile(-0.5), PanicError);
    IntDistribution empty;
    EXPECT_THROW(empty.quantile(0.5), PanicError);
}

TEST(IntDistribution, CdfPointsMonotone)
{
    IntDistribution dist;
    Rng rng(19);
    for (int i = 0; i < 1000; ++i)
        dist.record(rng.below(64) + 1);
    auto points = dist.cdfPoints(1, 64);
    ASSERT_EQ(points.size(), 64u);
    double prev = 0.0;
    for (const auto &[value, frac] : points) {
        EXPECT_GE(frac, prev);
        prev = frac;
    }
    EXPECT_DOUBLE_EQ(points.back().second, 1.0);
}

TEST(WindowedSeries, MeansAndTrim)
{
    WindowedSeries series;
    EXPECT_DOUBLE_EQ(series.mean(), 0.0);
    for (double v : {10.0, 2.0, 2.0, 2.0, 30.0})
        series.append(v);
    EXPECT_DOUBLE_EQ(series.mean(), 46.0 / 5);
    EXPECT_DOUBLE_EQ(series.trimmedMean(1, 1), 2.0);
    EXPECT_DOUBLE_EQ(series.min(), 2.0);
    EXPECT_DOUBLE_EQ(series.max(), 30.0);
}

TEST(WindowedSeries, EmptySeriesMinMaxAreZero)
{
    WindowedSeries series;
    EXPECT_DOUBLE_EQ(series.min(), 0.0);
    EXPECT_DOUBLE_EQ(series.max(), 0.0);
}

TEST(Stats, GeometricMean)
{
    EXPECT_DOUBLE_EQ(geometricMean({}), 0.0);
    EXPECT_NEAR(geometricMean({2.0, 8.0}), 4.0, 1e-9);
    EXPECT_NEAR(geometricMean({3.0, 3.0, 3.0}), 3.0, 1e-9);
}

TEST(Latency, PersonalityLatencies)
{
    LatencyConfig lat;
    EXPECT_DOUBLE_EQ(remoteFetchNs(lat, VmPersonality::LegoOs),
                     lat.legoOsRemoteFetchNs);
    EXPECT_DOUBLE_EQ(remoteFetchNs(lat, VmPersonality::Infiniswap),
                     lat.infiniswapRemoteFetchNs);
    EXPECT_DOUBLE_EQ(remoteFetchNs(lat, VmPersonality::KonaVm),
                     lat.konaVmRemoteFetchNs);
    // The paper's ordering: Kona < LegoOS ~ Kona-VM < Infiniswap.
    EXPECT_LT(lat.konaRemoteFetchNs, lat.legoOsRemoteFetchNs);
    EXPECT_LT(lat.legoOsRemoteFetchNs, lat.infiniswapRemoteFetchNs);
    // FMem is slower than CMem but in the same order of magnitude.
    EXPECT_GT(lat.fmemNs, lat.cmemNs);
    EXPECT_LT(lat.fmemNs, 2.0 * lat.cmemNs);
}

} // namespace
} // namespace kona
