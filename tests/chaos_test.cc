/**
 * @file
 * Tests for the gray-failure resilience stack: the scripted chaos
 * scenario format, the injector's non-fail-stop fault modes, the
 * Controller's EWMA health state machine, the deterministic chaos
 * harness's content oracle across seeds, live drain / hot-add under
 * load, and the evacuate-vs-async-eviction race regression.
 */

#include <gtest/gtest.h>

#include "chaos/chaos_runner.h"
#include "chaos/chaos_scenario.h"
#include "common/rng.h"
#include "core/kona_runtime.h"
#include "net/fault_injector.h"

namespace kona {
namespace {

// ---------------------------------------------------------------------
// Scenario format: parse/format round-trips, malformed input is fatal.
// ---------------------------------------------------------------------

TEST(ChaosScenarioFormat, RoundTrip)
{
    const char *text = R"(
        scenario round-trip
        workload redis-rand
        nodes 4
        replication 2
        ops 999
        scale 0.25
        @10 degrade 2 250000
        @10 nak 2 0.15
        @20 drop 1 0.02
        @30 spike 3 0.1 200000
        @40 flap 1 500 20
        @50 burst 2 400 8
        @60 partition 2 from 0
        @70 clear 2
        @80 down 3
        @90 up 3
        @100 drain 1
        @110 hotadd 5
    )";
    ChaosScenario a = parseChaosScenario(text);
    ChaosScenario b = parseChaosScenario(formatChaosScenario(a));
    EXPECT_EQ(b.name, "round-trip");
    EXPECT_EQ(b.workload, a.workload);
    EXPECT_EQ(b.nodes, a.nodes);
    EXPECT_EQ(b.replication, a.replication);
    EXPECT_EQ(b.ops, a.ops);
    EXPECT_DOUBLE_EQ(b.scale, a.scale);
    ASSERT_EQ(b.events.size(), a.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(b.events[i].atOp, a.events[i].atOp) << "event " << i;
        EXPECT_EQ(b.events[i].op, a.events[i].op) << "event " << i;
        EXPECT_EQ(b.events[i].node, a.events[i].node) << "event " << i;
        EXPECT_EQ(b.events[i].peer, a.events[i].peer) << "event " << i;
        EXPECT_DOUBLE_EQ(b.events[i].p, a.events[i].p) << "event " << i;
        EXPECT_EQ(b.events[i].ns, a.events[i].ns) << "event " << i;
        EXPECT_EQ(b.events[i].a, a.events[i].a) << "event " << i;
        EXPECT_EQ(b.events[i].b, a.events[i].b) << "event " << i;
    }
}

TEST(ChaosScenarioFormat, MalformedInputIsFatal)
{
    EXPECT_THROW(parseChaosScenario("@10 explode 2"), FatalError);
    EXPECT_THROW(parseChaosScenario("@10 degrade 2"), FatalError);
    EXPECT_THROW(parseChaosScenario("@10 partition 2 against 0"),
                 FatalError);
    EXPECT_THROW(parseChaosScenario("nodes three"), FatalError);
    EXPECT_THROW(parseChaosScenario("turbo 9"), FatalError);
}

TEST(ChaosScenarioFormat, BuiltinLibraryCoversTheGrayShapes)
{
    const auto &lib = builtinChaosScenarios();
    ASSERT_EQ(lib.size(), 5u);
    EXPECT_EQ(lib[0].name, "slow-node");
    EXPECT_EQ(lib[1].name, "flapping");
    EXPECT_EQ(lib[2].name, "partial-partition");
    EXPECT_EQ(lib[3].name, "drain-under-load");
    EXPECT_EQ(lib[4].name, "hot-add-rebalance");
    for (const ChaosScenario &sc : lib)
        EXPECT_FALSE(sc.events.empty()) << sc.name;
}

// ---------------------------------------------------------------------
// FaultInjector gray modes: determinism, degrade, partial partition.
// ---------------------------------------------------------------------

TEST(FaultInjectorGray, DegradeIsConstantAndDeterministic)
{
    FaultInjector a(42), b(42);
    a.profile(2).degradeDelayNs = 250'000;
    b.profile(2).degradeDelayNs = 250'000;
    for (int i = 0; i < 64; ++i) {
        FaultDecision da = a.decide(2, RdmaOpcode::Read, 64);
        FaultDecision db = b.decide(2, RdmaOpcode::Read, 64);
        EXPECT_EQ(da.status, WcStatus::Success);
        EXPECT_GE(da.extraLatencyNs, 250'000u);
        EXPECT_EQ(da.status, db.status);
        EXPECT_EQ(da.extraLatencyNs, db.extraLatencyNs);
    }
    EXPECT_EQ(a.degradesInjected(), 64u);
}

TEST(FaultInjectorGray, PartitionIsOneDirectional)
{
    FaultInjector fi(7);
    fi.profile(2).blockedSources.push_back(0);
    // Blocked direction: ops from node 0 to node 2 time out.
    for (int i = 0; i < 8; ++i) {
        FaultDecision d = fi.decide(0, 2, RdmaOpcode::Write, 64);
        EXPECT_EQ(d.status, WcStatus::Timeout);
    }
    // Every other direction is untouched: other sources reach node 2,
    // and source-oblivious callers never match the block list.
    EXPECT_EQ(fi.decide(1, 2, RdmaOpcode::Write, 64).status,
              WcStatus::Success);
    EXPECT_EQ(fi.decide(2, RdmaOpcode::Write, 64).status,
              WcStatus::Success);
    EXPECT_EQ(fi.decide(0, 1, RdmaOpcode::Write, 64).status,
              WcStatus::Success);
    EXPECT_EQ(fi.partitionBlocks(), 8u);
}

// ---------------------------------------------------------------------
// Controller health state machine: the full gray-failure life cycle.
// ---------------------------------------------------------------------

/** Two registered nodes plus a fast-moving health policy. */
struct HealthRig
{
    HealthRig() : controller(1 * MiB)
    {
        for (NodeId id = 1; id <= 2; ++id) {
            nodes.push_back(
                std::make_unique<MemoryNode>(fabric, id, 16 * MiB));
            controller.registerNode(*nodes.back());
        }
        // Gray faults must not trip the fail-stop detector here.
        controller.setFailureThreshold(1'000'000);
        HealthPolicy p;
        p.ewmaAlpha = 0.5;
        p.minSamples = 4;
        p.readmitProbation = 3;
        controller.setHealthPolicy(p);
    }

    Fabric fabric;
    Controller controller;
    std::vector<std::unique_ptr<MemoryNode>> nodes;
};

TEST(ControllerHealthMachine, FailuresWalkTheFullCycle)
{
    HealthRig rig;
    Controller &c = rig.controller;
    EXPECT_EQ(c.health(1), NodeHealth::Healthy);
    EXPECT_FALSE(c.avoidForReads(1));

    // Sustained failures: Healthy -> Suspect -> Quarantined, with the
    // membership epoch advancing monotonically at each transition.
    std::uint64_t epoch = c.membershipEpoch();
    while (c.health(1) != NodeHealth::Suspect)
        c.reportOpFailure(1);
    EXPECT_GT(c.membershipEpoch(), epoch);
    epoch = c.membershipEpoch();
    EXPECT_TRUE(c.avoidForReads(1));
    EXPECT_FALSE(c.takesPlacements(1));

    while (c.health(1) != NodeHealth::Quarantined)
        c.reportOpFailure(1);
    EXPECT_GT(c.membershipEpoch(), epoch);
    epoch = c.membershipEpoch();
    EXPECT_TRUE(c.avoidForReads(1));
    EXPECT_FALSE(c.takesPlacements(1));

    // Recovery: scores decay on successes -> Readmitted on probation
    // (placements allowed again), then Healthy once probation serves.
    while (c.health(1) != NodeHealth::Readmitted)
        c.reportOpSuccess(1);
    EXPECT_GT(c.membershipEpoch(), epoch);
    epoch = c.membershipEpoch();
    EXPECT_FALSE(c.avoidForReads(1));
    EXPECT_TRUE(c.takesPlacements(1));

    while (c.health(1) != NodeHealth::Healthy)
        c.reportOpSuccess(1);
    EXPECT_GT(c.membershipEpoch(), epoch);
    EXPECT_EQ(c.nodesSuspected(), 1u);
    EXPECT_EQ(c.nodesReadmitted(), 1u);
}

TEST(ControllerHealthMachine, LatencyAloneTripsSuspect)
{
    HealthRig rig;
    Controller &c = rig.controller;
    // Every op succeeds — the node is just slow. With the default
    // 40us budget and 4x slack, a sustained 300us EWMA maxes the
    // latency score even though badness stays zero.
    for (int i = 0; i < 32 && c.health(1) == NodeHealth::Healthy; ++i)
        c.observeFetch(1, 300'000);
    EXPECT_TRUE(c.health(1) == NodeHealth::Suspect ||
                c.health(1) == NodeHealth::Quarantined);
    EXPECT_GE(c.healthScore(1), 0.5);
}

TEST(ControllerHealthMachine, QuarantinedNodeTakesNoPlacements)
{
    HealthRig rig;
    Controller &c = rig.controller;
    while (c.health(2) != NodeHealth::Quarantined)
        c.reportOpFailure(2);
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(c.allocateSlab(PlacementRequest{})->where.node, 1u);
    EXPECT_TRUE(c.allocateSlab(PlacementRequest{.avoid = {1}}) ==
                std::nullopt);
}

TEST(ControllerHealthMachine, NakIsSofterEvidenceThanTimeout)
{
    HealthRig rig;
    Controller &c = rig.controller;
    c.observeNak(1);
    c.observeTimeout(2);
    EXPECT_GT(c.healthScore(2), c.healthScore(1));
    EXPECT_GT(c.healthScore(1), 0.0);
}

// ---------------------------------------------------------------------
// The content oracle: every builtin scenario, across seeds, must end
// with memory byte-identical to an undisturbed run.
// ---------------------------------------------------------------------

TEST(ChaosOracle, AllBuiltinScenariosMatchAcrossSeeds)
{
    for (const ChaosScenario &scenario : builtinChaosScenarios()) {
        ChaosRunConfig oracleCfg;
        oracleCfg.faultFree = true;
        ChaosReport oracle = runChaosScenario(scenario, oracleCfg);
        ASSERT_FALSE(oracle.image.empty()) << scenario.name;

        for (int i = 0; i < 5; ++i) {
            ChaosRunConfig cfg;
            cfg.seed = 0x5eedULL + 0x9e37ULL * i;
            ChaosReport run = runChaosScenario(scenario, cfg);
            EXPECT_EQ(run.opsDone, scenario.ops)
                << scenario.name << " seed " << i;
            EXPECT_TRUE(run.image == oracle.image)
                << scenario.name << " seed " << i
                << ": final memory diverged from the fault-free oracle";
            EXPECT_GT(run.availability, 0.5)
                << scenario.name << " seed " << i;
        }
    }
}

// ---------------------------------------------------------------------
// Scenario-specific behavior at the default seed.
// ---------------------------------------------------------------------

TEST(ChaosScenarios, SlowNodeTraversesTheStateMachine)
{
    ChaosReport run = runChaosScenario(builtinChaosScenarios()[0]);
    // Suspect -> Quarantined -> Readmitted -> Healthy: four
    // transitions on top of the initial epoch.
    EXPECT_GE(run.membershipEpoch, 5u);
    EXPECT_EQ(run.finalNodeCount, 3u);
    EXPECT_EQ(run.reliability.nodesFailed, 0u);
}

TEST(ChaosScenarios, FlappingHedgesReadsAwayFromTheFlappingNode)
{
    ChaosReport run = runChaosScenario(builtinChaosScenarios()[1]);
    EXPECT_GT(run.hedgedReads, 0u);
    EXPECT_EQ(run.reliability.nodesFailed, 0u);
}

TEST(ChaosScenarios, PartialPartitionMarksMissedCopiesStale)
{
    ChaosReport run = runChaosScenario(builtinChaosScenarios()[2]);
    // Shipments that exhaust retries against the partitioned (but
    // live) node must stale-mark its copies rather than stall the
    // pipeline; the final writeback freshens them (oracle test).
    EXPECT_GT(run.staleCopyMarks, 0u);
    EXPECT_EQ(run.reliability.nodesFailed, 0u);
}

TEST(ChaosScenarios, DrainUnderLoadLosesNothingWhileServing)
{
    const ChaosScenario &scenario = builtinChaosScenarios()[3];
    ChaosRunConfig oracleCfg;
    oracleCfg.faultFree = true;
    ChaosReport oracle = runChaosScenario(scenario, oracleCfg);
    ChaosReport run = runChaosScenario(scenario);
    EXPECT_TRUE(run.drained);
    EXPECT_EQ(run.drainReport.slabsLost, 0u);
    EXPECT_EQ(run.drainReport.slabsUnrebuilt, 0u);
    EXPECT_GT(run.drainReport.slabsRebuilt, 0u);
    EXPECT_EQ(run.finalNodeCount, 2u);
    // Serving never stopped: the full op budget executed and the
    // image matches the undisturbed run.
    EXPECT_EQ(run.opsDone, scenario.ops);
    EXPECT_TRUE(run.image == oracle.image);
}

TEST(ChaosScenarios, HotAddWarmsTheJoinerBeforeItTakesTraffic)
{
    ChaosReport run = runChaosScenario(builtinChaosScenarios()[4]);
    EXPECT_TRUE(run.hotAdded);
    EXPECT_GT(run.hotAddReport.slabsRebuilt, 0u);
    EXPECT_EQ(run.finalNodeCount, 4u);
    // joining + warm-up-complete = two epoch bumps.
    EXPECT_GE(run.membershipEpoch, 3u);
}

// ---------------------------------------------------------------------
// Evacuate vs. async eviction: decommissioning a node with CL logs
// still in flight to it must wait them out, not rewrite placements
// underneath the wire.
// ---------------------------------------------------------------------

TEST(EvacuateRace, DecommissionWaitsOutInflightShipments)
{
    Fabric fabric;
    Controller controller(1 * MiB);
    std::vector<std::unique_ptr<MemoryNode>> nodes;
    for (NodeId id = 1; id <= 3; ++id) {
        nodes.push_back(
            std::make_unique<MemoryNode>(fabric, id, 64 * MiB));
        controller.registerNode(*nodes.back());
    }
    KonaConfig cfg;
    cfg.fpga.vfmemSize = 32 * MiB;
    cfg.fpga.fmemSize = 16 * MiB;   // everything stays resident
    cfg.hierarchy = HierarchyConfig::scaled();
    cfg.evict.pipelineDepth = 4;
    cfg.evict.pumpPeriod = ~std::size_t(0);   // manual pump only
    KonaRuntime runtime(fabric, controller, 0, cfg);

    Addr a = runtime.allocate(4 * MiB, pageSize);
    Rng rng(31);
    for (std::size_t i = 0; i < 4 * MiB / 8; ++i)
        runtime.store<std::uint64_t>(a + i * 8, rng.next());

    // Ship every dirty page asynchronously, then immediately
    // decommission the node the region lives on — with the logs still
    // on the wire.
    std::vector<Addr> vpns;
    for (std::size_t p = 0; p < 4 * MiB / pageSize; ++p)
        vpns.push_back(pageNumber(a) + p);
    SimClock clock;
    runtime.evictionHandler().submit({vpns}, clock);
    NodeId leaving = runtime.fpga().translation().translate(a).node;
    EXPECT_GT(runtime.evictionHandler().inflightShipments(), 0u);

    runtime.decommissionNode(leaving);
    EXPECT_GT(runtime.evictionHandler().evacuateDrainStalls(), 0u);
    EXPECT_EQ(controller.nodeCount(), 2u);

    // Nothing was lost to the race: the bytes survive the migration.
    Rng check(31);
    for (std::size_t i = 0; i < 4 * MiB / 8; ++i) {
        ASSERT_EQ(runtime.load<std::uint64_t>(a + i * 8), check.next())
            << "word " << i;
    }
}

} // namespace
} // namespace kona
